#include "experiment/scenario_runner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "chain/chain_analyzer.hpp"
#include "chain/chain_builder.hpp"
#include "chain/chain_spec.hpp"
#include "chain/deployment.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "control/controller.hpp"
#include "control/fleet_controller.hpp"
#include "control/orchestrator.hpp"
#include "control/policy_registry.hpp"
#include "control/scale_out.hpp"
#include "core/multi_chain_pam.hpp"
#include "device/server.hpp"
#include "sim/chain_simulator.hpp"
#include "sim/cluster_simulator.hpp"
#include "sim/datacenter_simulator.hpp"

namespace pam {

namespace {

/// Every policy the runner instantiates comes from the registry — specs are
/// validated at parse time, so a failure here means the registry changed
/// under us (e.g. a test unregistered a policy); surface it, never fall
/// back.
Result<std::unique_ptr<MigrationPolicy>> make_policy(const PolicyConfig& config) {
  return PolicyRegistry::instance().create(config);
}

LatencySummary summarize(const LatencyRecorder& rec) {
  LatencySummary out;
  out.samples = rec.count();
  if (out.samples == 0) {
    return out;
  }
  out.mean_us = rec.mean().us();
  out.p50_us = rec.quantile(0.50).us();
  out.p90_us = rec.quantile(0.90).us();
  out.p99_us = rec.quantile(0.99).us();
  out.max_us = rec.max().us();
  return out;
}

MeasuredRun to_measured(const SimReport& report, std::size_t size_bytes) {
  MeasuredRun out;
  out.size_bytes = size_bytes;
  out.offered_gbps = report.offered_rate.value();
  out.goodput_gbps = report.egress_goodput.value();
  out.latency = summarize(report.latency);
  out.injected = report.injected;
  out.delivered = report.delivered;
  out.dropped_queue_nic = report.dropped_queue_nic;
  out.dropped_queue_cpu = report.dropped_queue_cpu;
  out.dropped_queue_pcie = report.dropped_queue_pcie;
  out.dropped_by_nf = report.dropped_by_nf;
  out.in_flight_at_end = report.in_flight_at_end;
  out.mean_crossings_per_packet = report.mean_crossings_per_packet;
  out.smartnic_utilization = report.smartnic_utilization;
  out.cpu_utilization = report.cpu_utilization;
  out.pcie_utilization = report.pcie_utilization;
  return out;
}

/// Size points to simulate: the paper sweep runs once per size, everything
/// else is a single run (size 0 == mixed distribution).
std::vector<std::size_t> size_points(const SizeSpec& sizes) {
  switch (sizes.kind) {
    case SizeSpec::Kind::kPaperSweep:
      return paper_size_sweep();
    case SizeSpec::Kind::kFixed:
      return {sizes.fixed};
    case SizeSpec::Kind::kImix:
    case SizeSpec::Kind::kUniform:
      return {0};
  }
  return {0};
}

PacketSizeDistribution dist_for(const SizeSpec& sizes, std::size_t point) {
  switch (sizes.kind) {
    case SizeSpec::Kind::kPaperSweep:
      return PacketSizeDistribution::fixed(point);
    case SizeSpec::Kind::kFixed:
      return PacketSizeDistribution::fixed(sizes.fixed);
    case SizeSpec::Kind::kImix:
      return PacketSizeDistribution::imix();
    case SizeSpec::Kind::kUniform:
      return PacketSizeDistribution::uniform(sizes.lo, sizes.hi);
  }
  return PacketSizeDistribution::fixed(512);
}

RateProfile profile_of(const RateSpec& rate) {
  switch (rate.kind) {
    case RateSpec::Kind::kConstant:
      return RateProfile::constant(Gbps{rate.a});
    case RateSpec::Kind::kStep:
      return RateProfile::step(Gbps{rate.a}, Gbps{rate.b},
                               SimTime::milliseconds(rate.at_ms));
    case RateSpec::Kind::kSinusoid:
      return RateProfile::sinusoid(Gbps{rate.a}, Gbps{rate.b},
                                   SimTime::milliseconds(rate.period_ms));
    case RateSpec::Kind::kFlash:
      // Flash crowd: base, spike to the peak at `at`, back to base after.
      return RateProfile::schedule(
          {{SimTime::zero(), Gbps{rate.a}},
           {SimTime::milliseconds(rate.at_ms), Gbps{rate.b}},
           {SimTime::milliseconds(rate.at_ms + rate.for_ms), Gbps{rate.a}}});
  }
  return RateProfile::constant(Gbps{rate.a});
}

/// One DES execution of `chain` at constant `rate` with the scenario's
/// arrival process and the given size distribution.
MeasuredRun simulate_once(const ScenarioSpec& spec, const ServiceChain& chain,
                          Gbps rate, const PacketSizeDistribution& sizes,
                          std::size_t size_point) {
  Server server = Server::paper_testbed();
  TrafficSourceConfig cfg;
  cfg.rate = RateProfile::constant(rate);
  cfg.process = spec.traffic.arrival;
  cfg.sizes = sizes;
  cfg.seed = spec.seed;
  ChainSimulator sim{chain, server, cfg};
  const SimReport report = sim.run(SimTime::milliseconds(spec.duration_ms),
                                   SimTime::milliseconds(spec.warmup_ms));
  return to_measured(report, size_point);
}

Result<RunResult> run_compare(const ScenarioSpec& spec, const ServiceChain& chain) {
  RunResult result;
  result.spec = spec;

  Server server = Server::paper_testbed();
  const ChainAnalyzer analyzer{server};
  const Gbps plan_rate{spec.plan_rate_gbps};

  result.variants.reserve(spec.variants.size());
  for (const auto& variant : spec.variants) {
    VariantResult vr;
    vr.label = variant.label;
    vr.policy = variant.policy.to_string();
    vr.plan_rate_gbps = spec.plan_rate_gbps;
    vr.chain_before = chain.describe();

    auto policy = make_policy(variant.policy);
    if (!policy) {
      return policy.error();
    }
    vr.plan = policy.value()->plan(chain, analyzer, plan_rate);
    const ServiceChain after =
        vr.plan.feasible ? vr.plan.apply_to(chain) : chain;
    vr.chain_after = after.describe();

    const Gbps cap = analyzer.max_sustainable_rate(after);
    Gbps measure_rate = plan_rate;
    switch (variant.measure_rate.kind) {
      case MeasureRate::Kind::kGbps:
        measure_rate = Gbps{variant.measure_rate.value};
        break;
      case MeasureRate::Kind::kPlanRate:
        measure_rate = plan_rate;
        break;
      case MeasureRate::Kind::kCapTimes:
        measure_rate = cap * variant.measure_rate.value;
        break;
    }
    vr.measure_rate_gbps = measure_rate.value();

    const auto util = analyzer.utilization(after, measure_rate);
    vr.analytic.max_rate_gbps = cap.value();
    vr.analytic.smartnic_utilization = util.smartnic;
    vr.analytic.cpu_utilization = util.cpu;
    vr.analytic.pcie_utilization = util.pcie;
    vr.analytic.pcie_crossings = after.pcie_crossings();

    if (spec.measure != MeasureMode::kAnalytic) {
      const auto points = size_points(spec.traffic.sizes);
      vr.runs.reserve(points.size());
      for (const std::size_t point : points) {
        vr.runs.push_back(simulate_once(spec, after, measure_rate,
                                        dist_for(spec.traffic.sizes, point),
                                        point));
      }
    }
    result.variants.push_back(std::move(vr));
  }
  return result;
}

/// Loss ratio of `chain` at `rate`, measured by the DES with the capacity
/// scenario's fixed frame size.
double loss_ratio(const ScenarioSpec& spec, const ServiceChain& chain, Gbps rate) {
  const MeasuredRun run =
      simulate_once(spec, chain, rate,
                    PacketSizeDistribution::fixed(spec.capacity.size_bytes),
                    spec.capacity.size_bytes);
  return run.injected > 0 ? static_cast<double>(run.dropped_total()) /
                                static_cast<double>(run.injected)
                          : 0.0;
}

RunResult run_capacity(const ScenarioSpec& spec) {
  RunResult result;
  result.spec = spec;

  Server server = Server::paper_testbed();
  const ChainAnalyzer analyzer{server};
  const CapacityTable table = CapacityTable::paper_defaults();

  for (const NfType type : spec.capacity.nfs) {
    for (const Location loc : spec.capacity.locations) {
      ChainBuilder builder{"isolated"};
      builder.egress(loc == Location::kSmartNic ? Attachment::kWire
                                                : Attachment::kHost);
      builder.add(type, "nf", loc);
      const ServiceChain chain = builder.build();

      const Gbps configured = table.lookup(type).on(loc);
      const Gbps analytic = analyzer.max_sustainable_rate(chain);

      // Binary search for the largest rate below the loss threshold —
      // the paper's "sweep the offered rate with a DPDK sender" method.
      double lo = 0.05;
      double hi = analytic.value() * 1.6;
      for (int iter = 0; iter < spec.capacity.search_iters; ++iter) {
        const double mid = (lo + hi) / 2.0;
        if (loss_ratio(spec, chain, Gbps{mid}) < spec.capacity.loss_threshold) {
          lo = mid;
        } else {
          hi = mid;
        }
      }

      CapacityResult row;
      row.nf = std::string{to_string(type)};
      row.device = std::string{to_string(loc)};
      row.configured_gbps = configured.value();
      row.analytic_gbps = analytic.value();
      row.realized_gbps = lo;
      result.capacities.push_back(std::move(row));
    }
  }
  return result;
}

Result<RunResult> run_timeline(const ScenarioSpec& spec, const ServiceChain& chain) {
  RunResult result;
  result.spec = spec;

  TimelineResult tl;
  tl.chain_before = chain.describe();

  Server server = Server::paper_testbed();
  TrafficSourceConfig cfg;
  cfg.rate = profile_of(spec.traffic.rate);
  cfg.process = spec.traffic.arrival;
  cfg.sizes = dist_for(spec.traffic.sizes, size_points(spec.traffic.sizes).front());
  cfg.seed = spec.seed;

  ChainSimulator sim{chain, server, cfg};

  ControllerOptions opts;
  opts.trigger_utilization = spec.controller.trigger_utilization;
  opts.scale_in_below_utilization = spec.controller.scale_in_below;
  opts.period = SimTime::milliseconds(spec.controller.period_ms);
  opts.first_check = SimTime::milliseconds(spec.controller.first_check_ms);
  opts.cooldown = SimTime::milliseconds(spec.controller.cooldown_ms);

  auto policy = make_policy(spec.policy);
  if (!policy) {
    return policy.error();
  }
  Controller controller{sim, std::move(policy).value(), opts};
  if (spec.scale_in.name != "none") {
    auto scale_in = make_policy(spec.scale_in);
    if (!scale_in) {
      return scale_in.error();
    }
    controller.set_scale_in_policy(std::move(scale_in).value());
  }
  controller.arm();

  const SimReport report = sim.run(SimTime::milliseconds(spec.duration_ms),
                                   SimTime::milliseconds(spec.warmup_ms));

  tl.chain_after = sim.chain().describe();
  tl.events = controller.events();
  tl.migrations_executed = controller.migrations_executed();
  tl.scale_out_requested = controller.scale_out_requested();
  const std::size_t point = spec.traffic.sizes.kind == SizeSpec::Kind::kFixed
                                ? spec.traffic.sizes.fixed
                                : 0;
  tl.metrics = to_measured(report, point);

  result.timeline = std::move(tl);
  return result;
}

Result<RunResult> run_deployment(const ScenarioSpec& spec) {
  RunResult result;
  result.spec = spec;

  Server server = Server::paper_testbed();
  const ChainAnalyzer analyzer{server};

  Deployment dep;
  for (const auto& decl : spec.chains) {
    auto parsed = parse_chain_spec(decl.spec, decl.name);
    if (!parsed) {
      return Error{format("chain '%s': %s", decl.name.c_str(),
                          parsed.error().what().c_str())};
    }
    dep.add(std::move(parsed).value(), Gbps{decl.offered_gbps});
  }

  DeploymentResult dr;
  const auto before = dep.utilization(analyzer);
  dr.smartnic_before = before.smartnic;
  dr.cpu_before = before.cpu;
  dr.weighted_crossings_before = dep.weighted_crossings();

  const MultiChainPam pam;
  const MultiChainPlan plan = pam.plan(dep, analyzer);
  dr.trace = plan.trace;
  dr.feasible = plan.feasible;
  dr.infeasibility_reason = plan.infeasibility_reason;
  dr.total_crossing_delta = plan.total_crossing_delta();

  const Deployment after =
      plan.feasible && !plan.empty() ? plan.apply_to(dep) : dep;
  const auto after_util = after.utilization(analyzer);
  dr.smartnic_after = after_util.smartnic;
  dr.cpu_after = after_util.cpu;
  dr.weighted_crossings_after = after.weighted_crossings();

  const ScaleOutPlanner planner{spec.deployment.scale_out_headroom};
  dr.chains.reserve(after.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    const DeployedChain& deployed = after.at(i);
    DeploymentChainResult cr;
    cr.name = deployed.chain.name();
    cr.chain_before = dep.at(i).chain.describe();
    cr.chain_after = deployed.chain.describe();
    cr.offered_gbps = deployed.offered.value();
    cr.burst_gbps = deployed.offered.value() * spec.deployment.burst_multiplier;
    const ScaleOutDecision decision =
        planner.plan(deployed.chain, analyzer, Gbps{cr.burst_gbps});
    cr.replicas = decision.replicas;
    cr.scale_out_rationale = decision.rationale;
    dr.chains.push_back(std::move(cr));
  }

  result.deployment = std::move(dr);
  return result;
}

Result<RunResult> run_cluster(const ScenarioSpec& spec) {
  RunResult result;
  result.spec = spec;
  const ClusterSpec& cs = spec.cluster;

  ClusterSimulator cluster{cs.servers, Calibration::defaults(),
                           SimTime::microseconds(cs.inter_server_us)};
  std::vector<std::string> before;
  std::vector<std::size_t> homes;
  before.reserve(spec.chains.size());
  homes.reserve(spec.chains.size());
  for (std::size_t i = 0; i < spec.chains.size(); ++i) {
    const ChainDecl& decl = spec.chains[i];
    auto parsed = parse_chain_spec(decl.spec, decl.name);
    if (!parsed) {
      return Error{format("chain '%s': %s", decl.name.c_str(),
                          parsed.error().what().c_str())};
    }
    const std::size_t home = decl.server >= 0
                                 ? static_cast<std::size_t>(decl.server)
                                 : i % cs.servers;
    TrafficSourceConfig cfg;
    cfg.rate = decl.has_rate ? profile_of(decl.rate)
                             : RateProfile::constant(Gbps{decl.offered_gbps});
    cfg.process = spec.traffic.arrival;
    cfg.sizes =
        dist_for(spec.traffic.sizes, size_points(spec.traffic.sizes).front());
    // One seed lineage: every per-chain stream derives from the scenario
    // seed through a splitmix64 mix, never from clocks or random_device.
    cfg.seed = Rng::derive(spec.seed, i);
    before.push_back(parsed.value().describe());
    homes.push_back(home);
    cluster.add_chain(std::move(parsed).value(), std::move(cfg), home);
    if (decl.arrive_ms > 0.0 || decl.depart_ms >= 0.0) {
      cluster.chain_sim(i).set_active_window(
          SimTime::milliseconds(decl.arrive_ms),
          decl.depart_ms >= 0.0 ? SimTime::milliseconds(decl.depart_ms)
                                : SimTime::nanoseconds(-1));
    }
  }

  std::optional<FleetController> fleet;
  if (cs.rebalance) {
    FleetControllerOptions opts;
    opts.trigger_utilization = cs.trigger_utilization;
    opts.target_max_load = cs.target_max_load;
    opts.period = SimTime::milliseconds(cs.period_ms);
    opts.first_check = SimTime::milliseconds(cs.first_check_ms);
    opts.cooldown = SimTime::milliseconds(cs.cooldown_ms);
    auto policy = make_policy(spec.policy);
    if (!policy) {
      return policy.error();
    }
    fleet.emplace(cluster, std::move(policy).value(), opts);
    // Heterogeneous fleets: per-chain [chain] policy overrides.
    for (std::size_t i = 0; i < spec.chains.size(); ++i) {
      if (spec.chains[i].policy.empty()) {
        continue;
      }
      auto chain_policy = make_policy(spec.chains[i].policy);
      if (!chain_policy) {
        return chain_policy.error();
      }
      fleet->set_chain_policy(i, std::move(chain_policy).value());
    }
    fleet->arm();
  }

  // Failure kind: each event kills a slot (placement-level: bound work keeps
  // draining through the ToR) and lets the fleet controller evacuate the
  // resident NFs loss-free; optional recovery re-admits the slot.
  FleetController* fleet_ptr = fleet ? &*fleet : nullptr;
  for (const FailureEvent& ev : spec.failures) {
    const std::size_t victim = ev.server;
    cluster.kernel().schedule_at(
        SimTime::milliseconds(ev.at_ms), [&cluster, fleet_ptr, victim] {
          cluster.fail_server(victim);
          if (fleet_ptr != nullptr) {
            fleet_ptr->on_server_failed(victim);
          }
        });
    if (ev.recover_ms >= 0.0) {
      cluster.kernel().schedule_at(
          SimTime::milliseconds(ev.recover_ms),
          [&cluster, victim] { cluster.recover_server(victim); });
    }
  }

  // Hostile kind: replay the link trace — fabric delay steps plus per-slot
  // capacity fades (degraded devices serve slower, so live load climbs).
  for (const LinkTraceSpec::FabricPoint& point : spec.link.fabric) {
    cluster.kernel().schedule_at(
        SimTime::milliseconds(point.at_ms), [&cluster, us = point.delay_us] {
          cluster.set_fabric_latency(SimTime::microseconds(us));
        });
  }
  for (const LinkTraceSpec::SlotFade& fade : spec.link.fades) {
    cluster.kernel().schedule_at(
        SimTime::milliseconds(fade.at_ms),
        [&cluster, s = fade.server, speed = fade.speed] {
          cluster.set_slot_speed(s, speed);
        });
  }

  const ClusterReport report = cluster.run(
      SimTime::milliseconds(spec.duration_ms), SimTime::milliseconds(spec.warmup_ms));

  ClusterResult cr;
  cr.servers = cs.servers;
  cr.rebalance = cs.rebalance;
  if (fleet) {
    cr.events = fleet->events();
    cr.migrations_executed = fleet->migrations_executed();
    cr.scale_out_moves = fleet->scale_out_moves();
    cr.evacuations = fleet->evacuations();
  }

  const std::size_t point = spec.traffic.sizes.kind == SizeSpec::Kind::kFixed
                                ? spec.traffic.sizes.fixed
                                : 0;
  MeasuredRun fleet_run;
  fleet_run.size_bytes = point;
  double crossings_weighted = 0.0;
  std::uint64_t crossings_weight = 0;
  cr.chains.reserve(report.per_chain.size());
  for (std::size_t i = 0; i < report.per_chain.size(); ++i) {
    const SimReport& chain_report = report.per_chain[i];
    ClusterChainResult chain_result;
    chain_result.name = spec.chains[i].name;
    chain_result.home_server = homes[i];
    chain_result.chain_before = before[i];
    chain_result.chain_after = cluster.chain_sim(i).chain().describe();
    chain_result.nodes_off_home = cluster.chain_sim(i).nodes_off_home();
    chain_result.inter_server_hops = chain_report.inter_server_hops;
    chain_result.metrics = to_measured(chain_report, point);
    cr.chains.push_back(std::move(chain_result));

    fleet_run.injected += chain_report.injected;
    fleet_run.delivered += chain_report.delivered;
    fleet_run.dropped_queue_nic += chain_report.dropped_queue_nic;
    fleet_run.dropped_queue_cpu += chain_report.dropped_queue_cpu;
    fleet_run.dropped_queue_pcie += chain_report.dropped_queue_pcie;
    fleet_run.dropped_by_nf += chain_report.dropped_by_nf;
    fleet_run.in_flight_at_end += chain_report.in_flight_at_end;
    crossings_weighted += chain_report.mean_crossings_per_packet *
                          static_cast<double>(chain_report.measured_delivered);
    crossings_weight += chain_report.measured_delivered;
  }
  cr.per_server.reserve(report.per_server.size());
  for (const ServerSummary& sum : report.per_server) {
    ClusterServerResult server_result;
    server_result.server_id = sum.server_id;
    server_result.chains_homed = sum.chains_homed;
    server_result.nodes_hosted = sum.nodes_hosted;
    server_result.smartnic_utilization = sum.smartnic_utilization;
    server_result.cpu_utilization = sum.cpu_utilization;
    server_result.pcie_utilization = sum.pcie_utilization;
    server_result.injected = sum.injected;
    server_result.delivered = sum.delivered;
    server_result.dropped = sum.dropped;
    cr.per_server.push_back(server_result);
    // Fleet utilisation = the hottest slot (bottleneck view).
    fleet_run.smartnic_utilization =
        std::max(fleet_run.smartnic_utilization, sum.smartnic_utilization);
    fleet_run.cpu_utilization =
        std::max(fleet_run.cpu_utilization, sum.cpu_utilization);
    fleet_run.pcie_utilization =
        std::max(fleet_run.pcie_utilization, sum.pcie_utilization);
  }
  fleet_run.offered_gbps = report.offered_rate.value();
  fleet_run.goodput_gbps = report.egress_goodput.value();
  fleet_run.latency = summarize(report.latency);
  fleet_run.mean_crossings_per_packet =
      crossings_weight > 0 ? crossings_weighted / static_cast<double>(crossings_weight)
                           : 0.0;
  cr.fleet = fleet_run;
  cr.inter_server_hops = report.inter_server_hops;
  cr.conserved = report.conserved();

  result.cluster = std::move(cr);
  return result;
}

/// The sharded run path ([cluster] shards > 1): per-rack KernelShards in
/// lock-step epochs, per-rack FleetControllers, and optionally the
/// DatacenterOrchestrator leasing chains across racks at epoch barriers.
/// Mirrors run_cluster's wiring; results carry global server/chain ids and
/// are bit-identical for any thread count.
Result<RunResult> run_datacenter(const ScenarioSpec& spec,
                                 std::size_t threads) {
  RunResult result;
  result.spec = spec;
  const ClusterSpec& cs = spec.cluster;

  DatacenterSimulator::Options options;
  options.shards = cs.shards;
  options.servers_total = cs.servers;
  options.calibration = Calibration::defaults();
  options.intra_rack_latency = SimTime::microseconds(cs.inter_server_us);
  options.cross_rack_latency = SimTime::microseconds(cs.cross_rack_us);
  DatacenterSimulator dc{options};

  std::vector<std::string> before;
  std::vector<std::size_t> homes;
  std::vector<std::vector<std::size_t>> local_to_global(dc.num_racks());
  before.reserve(spec.chains.size());
  homes.reserve(spec.chains.size());
  for (std::size_t i = 0; i < spec.chains.size(); ++i) {
    const ChainDecl& decl = spec.chains[i];
    auto parsed = parse_chain_spec(decl.spec, decl.name);
    if (!parsed) {
      return Error{format("chain '%s': %s", decl.name.c_str(),
                          parsed.error().what().c_str())};
    }
    const std::size_t home = decl.server >= 0
                                 ? static_cast<std::size_t>(decl.server)
                                 : i % cs.servers;
    TrafficSourceConfig cfg;
    cfg.rate = decl.has_rate ? profile_of(decl.rate)
                             : RateProfile::constant(Gbps{decl.offered_gbps});
    cfg.process = spec.traffic.arrival;
    cfg.sizes =
        dist_for(spec.traffic.sizes, size_points(spec.traffic.sizes).front());
    // Same lineage as the single-kernel path: stream i derives from the
    // scenario seed alone — which rack (or thread) runs the chain never
    // enters the stream.
    cfg.seed = Rng::derive(spec.seed, i);
    before.push_back(parsed.value().describe());
    homes.push_back(home);
    const std::size_t global_c =
        dc.add_chain(std::move(parsed).value(), std::move(cfg), home);
    (void)global_c;
    local_to_global[dc.home_rack_of(i)].push_back(i);
    if (decl.arrive_ms > 0.0 || decl.depart_ms >= 0.0) {
      dc.chain_sim(i).set_active_window(
          SimTime::milliseconds(decl.arrive_ms),
          decl.depart_ms >= 0.0 ? SimTime::milliseconds(decl.depart_ms)
                                : SimTime::nanoseconds(-1));
    }
  }

  std::vector<std::unique_ptr<FleetController>> rack_controllers;
  if (cs.rebalance) {
    FleetControllerOptions opts;
    opts.trigger_utilization = cs.trigger_utilization;
    opts.target_max_load = cs.target_max_load;
    opts.period = SimTime::milliseconds(cs.period_ms);
    opts.first_check = SimTime::milliseconds(cs.first_check_ms);
    opts.cooldown = SimTime::milliseconds(cs.cooldown_ms);
    rack_controllers.reserve(dc.num_racks());
    for (std::size_t r = 0; r < dc.num_racks(); ++r) {
      auto policy = make_policy(spec.policy);
      if (!policy) {
        return policy.error();
      }
      rack_controllers.push_back(std::make_unique<FleetController>(
          dc.rack(r), std::move(policy).value(), opts));
    }
    for (std::size_t i = 0; i < spec.chains.size(); ++i) {
      if (spec.chains[i].policy.empty()) {
        continue;
      }
      auto chain_policy = make_policy(spec.chains[i].policy);
      if (!chain_policy) {
        return chain_policy.error();
      }
      rack_controllers[dc.home_rack_of(i)]->set_chain_policy(
          dc.local_chain_of(i), std::move(chain_policy).value());
    }
    for (auto& controller : rack_controllers) {
      controller->arm();
    }
  }

  std::optional<DatacenterOrchestrator> orchestrator;
  if (cs.rebalance && cs.orchestrate) {
    DatacenterOrchestratorOptions opts;
    opts.trigger_utilization = cs.trigger_utilization;
    opts.target_max_load = cs.target_max_load;
    opts.period = SimTime::milliseconds(cs.period_ms);
    opts.first_check = SimTime::milliseconds(cs.first_check_ms);
    opts.cooldown = SimTime::milliseconds(cs.cooldown_ms);
    std::vector<FleetController*> racks;
    racks.reserve(rack_controllers.size());
    for (auto& controller : rack_controllers) {
      racks.push_back(controller.get());
    }
    orchestrator.emplace(dc, std::move(racks), opts);
    dc.set_barrier_hook(
        [&orchestrator](SimTime t, bool draining) {
          orchestrator->on_barrier(t, draining);
        });
    dc.set_drain_gate([&orchestrator] { return orchestrator->has_pending(); });
  }

  // Failure kind: each event is a rack-local perturbation, scheduled on the
  // victim's own shard so no other shard observes it mid-epoch.
  for (const FailureEvent& ev : spec.failures) {
    const std::size_t r = dc.rack_of(ev.server);
    const std::size_t slot = dc.slot_of(ev.server);
    ClusterSimulator* rack = &dc.rack(r);
    FleetController* controller =
        r < rack_controllers.size() ? rack_controllers[r].get() : nullptr;
    dc.schedule_on_rack(r, SimTime::milliseconds(ev.at_ms),
                        [rack, controller, slot] {
                          rack->fail_server(slot);
                          if (controller != nullptr) {
                            controller->on_server_failed(slot);
                          }
                        });
    if (ev.recover_ms >= 0.0) {
      dc.schedule_on_rack(r, SimTime::milliseconds(ev.recover_ms),
                          [rack, slot] { rack->recover_server(slot); });
    }
  }

  // Hostile kind: fabric delay steps hit every rack's intra-rack fabric (one
  // rack-local event per shard); capacity fades hit the owning rack only.
  for (const LinkTraceSpec::FabricPoint& point : spec.link.fabric) {
    dc.schedule_fabric_latency(SimTime::milliseconds(point.at_ms),
                               SimTime::microseconds(point.delay_us));
  }
  for (const LinkTraceSpec::SlotFade& fade : spec.link.fades) {
    const std::size_t r = dc.rack_of(fade.server);
    const std::size_t slot = dc.slot_of(fade.server);
    ClusterSimulator* rack = &dc.rack(r);
    dc.schedule_on_rack(r, SimTime::milliseconds(fade.at_ms),
                        [rack, slot, speed = fade.speed] {
                          rack->set_slot_speed(slot, speed);
                        });
  }

  const DatacenterReport dr =
      dc.run(SimTime::milliseconds(spec.duration_ms),
             SimTime::milliseconds(spec.warmup_ms),
             threads > 0 ? threads : cs.threads);
  const ClusterReport& report = dr.cluster;

  ClusterResult cr;
  cr.servers = cs.servers;
  cr.rebalance = cs.rebalance;
  cr.shards = cs.shards;

  // Event log: rack controllers speak rack-local chain and slot ids; remap
  // the structured fields to global ids (narrative `detail` strings keep
  // their rack-local view) and merge with the orchestrator's (already
  // global) events in barrier order.  stable_sort keeps the per-source
  // emission order among same-instant events, so the merge is deterministic.
  for (std::size_t r = 0; r < rack_controllers.size(); ++r) {
    for (ControlEvent ev : rack_controllers[r]->events()) {
      ev.chain = local_to_global[r].at(ev.chain);
      ev.server = dc.global_server(r, ev.server);
      cr.events.push_back(std::move(ev));
    }
    cr.migrations_executed += rack_controllers[r]->migrations_executed();
    cr.scale_out_moves += rack_controllers[r]->scale_out_moves();
    cr.evacuations += rack_controllers[r]->evacuations();
  }
  if (orchestrator) {
    const auto& events = orchestrator->events();
    cr.events.insert(cr.events.end(), events.begin(), events.end());
    cr.cross_rack_moves = orchestrator->cross_rack_moves();
  }
  std::stable_sort(cr.events.begin(), cr.events.end(),
                   [](const ControlEvent& a, const ControlEvent& b) {
                     return a.at < b.at;
                   });

  const std::size_t point = spec.traffic.sizes.kind == SizeSpec::Kind::kFixed
                                ? spec.traffic.sizes.fixed
                                : 0;
  MeasuredRun fleet_run;
  fleet_run.size_bytes = point;
  double crossings_weighted = 0.0;
  std::uint64_t crossings_weight = 0;
  cr.chains.reserve(report.per_chain.size());
  for (std::size_t i = 0; i < report.per_chain.size(); ++i) {
    const SimReport& chain_report = report.per_chain[i];
    ClusterChainResult chain_result;
    chain_result.name = spec.chains[i].name;
    chain_result.home_server = homes[i];
    chain_result.chain_before = before[i];
    chain_result.chain_after = dc.chain_sim(i).chain().describe();
    chain_result.nodes_off_home = dc.chain_sim(i).nodes_off_home();
    chain_result.nodes_remote = dc.chain_sim(i).nodes_remote();
    chain_result.inter_server_hops = chain_report.inter_server_hops;
    chain_result.metrics = to_measured(chain_report, point);
    cr.chains.push_back(std::move(chain_result));

    fleet_run.injected += chain_report.injected;
    fleet_run.delivered += chain_report.delivered;
    fleet_run.dropped_queue_nic += chain_report.dropped_queue_nic;
    fleet_run.dropped_queue_cpu += chain_report.dropped_queue_cpu;
    fleet_run.dropped_queue_pcie += chain_report.dropped_queue_pcie;
    fleet_run.dropped_by_nf += chain_report.dropped_by_nf;
    fleet_run.in_flight_at_end += chain_report.in_flight_at_end;
    crossings_weighted += chain_report.mean_crossings_per_packet *
                          static_cast<double>(chain_report.measured_delivered);
    crossings_weight += chain_report.measured_delivered;
  }
  cr.per_server.reserve(report.per_server.size());
  for (const ServerSummary& sum : report.per_server) {
    ClusterServerResult server_result;
    server_result.server_id = sum.server_id;
    server_result.chains_homed = sum.chains_homed;
    server_result.nodes_hosted = sum.nodes_hosted;
    server_result.smartnic_utilization = sum.smartnic_utilization;
    server_result.cpu_utilization = sum.cpu_utilization;
    server_result.pcie_utilization = sum.pcie_utilization;
    server_result.injected = sum.injected;
    server_result.delivered = sum.delivered;
    server_result.dropped = sum.dropped;
    cr.per_server.push_back(server_result);
    fleet_run.smartnic_utilization =
        std::max(fleet_run.smartnic_utilization, sum.smartnic_utilization);
    fleet_run.cpu_utilization =
        std::max(fleet_run.cpu_utilization, sum.cpu_utilization);
    fleet_run.pcie_utilization =
        std::max(fleet_run.pcie_utilization, sum.pcie_utilization);
  }
  fleet_run.offered_gbps = report.offered_rate.value();
  fleet_run.goodput_gbps = report.egress_goodput.value();
  fleet_run.latency = summarize(report.latency);
  fleet_run.mean_crossings_per_packet =
      crossings_weight > 0 ? crossings_weighted / static_cast<double>(crossings_weight)
                           : 0.0;
  cr.fleet = fleet_run;
  cr.inter_server_hops = report.inter_server_hops;
  cr.conserved = report.conserved();

  cr.cross_rack_hops = report.cross_rack_hops;
  cr.cross_rack_frames = dr.cross_rack_frames;
  cr.epochs = dr.epochs;
  cr.shard_totals.reserve(dr.shards.size());
  for (const ShardSummary& shard : dr.shards) {
    ClusterShardResult sr;
    sr.shard = shard.shard;
    sr.first_server = shard.first_server;
    sr.servers = shard.servers;
    sr.events_executed = shard.events_executed;
    sr.injected = shard.injected;
    sr.delivered = shard.delivered;
    sr.dropped = shard.dropped;
    sr.in_flight_at_end = shard.in_flight_at_end;
    sr.frames_out = shard.frames_out;
    cr.shard_totals.push_back(sr);
  }

  result.cluster = std::move(cr);
  return result;
}

}  // namespace

Result<RunResult> ScenarioRunner::run(const ScenarioSpec& spec,
                                      std::size_t threads_override) const {
  if (threads_override > 0 && spec.cluster.shards <= 1) {
    return Error{
        "--threads only applies to sharded scenarios ([cluster] shards > 1)"};
  }
  switch (spec.kind) {
    case ScenarioKind::kCompare:
    case ScenarioKind::kTimeline: {
      auto parsed = parse_chain_spec(spec.chain, spec.name);
      if (!parsed) {
        return Error{format("scenario '%s': %s", spec.name.c_str(),
                            parsed.error().what().c_str())};
      }
      if (spec.kind == ScenarioKind::kCompare) {
        return run_compare(spec, parsed.value());
      }
      return run_timeline(spec, parsed.value());
    }
    case ScenarioKind::kCapacity:
      return run_capacity(spec);
    case ScenarioKind::kDeployment:
      return run_deployment(spec);
    case ScenarioKind::kCluster:
    case ScenarioKind::kChurn:
    case ScenarioKind::kFailure:
    case ScenarioKind::kHostile:
      // shards == 1 keeps the classic single-kernel path bit-for-bit; the
      // sharded path is opt-in via [cluster] shards.
      return spec.cluster.shards > 1 ? run_datacenter(spec, threads_override)
                                     : run_cluster(spec);
  }
  return Error{"unknown scenario kind"};
}

}  // namespace pam
