// Post-run invariant auditing.
//
// A RunResult is a complete, self-describing record of one scenario
// execution: packet accounting, before/after placements, and the typed
// ControlEvent log.  That makes a class of correctness properties checkable
// *after the fact*, with no hooks into the simulator — which is exactly what
// the scenario fuzzer (scenario_fuzz.hpp) needs: run an arbitrary generated
// scenario, then audit the wreckage.
//
// Invariants checked:
//
//   conservation    every measured run satisfies
//                   injected == delivered + dropped + in_flight_at_end,
//                   per chain and fleet-wide (nothing vanishes, nothing is
//                   double-counted — including across failures/evacuations)
//   nf-state        no NF instance is lost or duplicated: the multiset of
//                   instance names in every chain_after equals its
//                   chain_before (migration relocates, never destroys)
//   monotone-events the control log is causally ordered: event times are
//                   non-decreasing and within the run horizon
//   cooldown        no trigger or scale-in plan fires within the cooldown
//                   window after a completed action on the same chain
//   single-flight   at most one visible control action is in flight per
//                   chain at any time (no overlapping plans, no trigger
//                   while a move is pending)
//
// `pam_exp run --check-invariants` audits every scenario it executes;
// `pam_exp fuzz` audits every generated one.  tests/test_invariants.cpp
// feeds the checker mutated results to prove each rule actually fires.

#pragma once

#include <string>
#include <vector>

#include "experiment/scenario_runner.hpp"

namespace pam {

/// One broken invariant, with a diagnostic precise enough to act on.
struct InvariantViolation {
  std::string invariant;  ///< "conservation" | "nf-state" | "monotone-events"
                          ///< | "cooldown" | "single-flight"
  std::string detail;     ///< what broke, where, and by how much
};

/// Everything the audit of one RunResult found.
struct InvariantReport {
  std::vector<InvariantViolation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// One line per violation ("invariant: detail"), or "all invariants hold".
  [[nodiscard]] std::string describe() const;
};

/// Audits `result` against every invariant.  Pure function of the result;
/// never touches the simulator.
[[nodiscard]] InvariantReport check_invariants(const RunResult& result);

}  // namespace pam
