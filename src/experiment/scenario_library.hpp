// Bundled scenarios: locating, listing and loading the presets shipped
// under the repository's `scenarios/` directory.
//
// Resolution order for the directory:
//   1. the PAM_SCENARIOS_DIR environment variable, when set;
//   2. `./scenarios` relative to the current working directory, when present;
//   3. the source-tree path baked in at configure time (developer builds).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "experiment/scenario_runner.hpp"
#include "experiment/scenario_spec.hpp"

namespace pam {

/// The directory bundled `.scn` presets are loaded from (see resolution
/// order above).  The path is returned even if it does not exist; callers
/// get a clear error from the load functions.
[[nodiscard]] std::string default_scenario_dir();

/// Preset names (file stems, sorted) found in `dir`.
[[nodiscard]] Result<std::vector<std::string>> list_scenarios(const std::string& dir);

/// Reads and parses one `.scn` file.
[[nodiscard]] Result<ScenarioSpec> load_scenario_file(const std::string& path);

/// Loads the bundled preset `name` (e.g. "fig1-crossings") from
/// default_scenario_dir().
[[nodiscard]] Result<ScenarioSpec> load_bundled_scenario(std::string_view name);

/// Loads and runs the bundled preset `name`, returning the structured
/// result (no printing).  Benches that emit trajectory JSON use this and
/// print the report themselves.
[[nodiscard]] Result<RunResult> execute_bundled_scenario(std::string_view name);

/// Loads, runs, and prints the bundled preset `name`; returns a process
/// exit code (0 success).  This is the whole implementation of the thin
/// bench/example wrappers.  `verbose` adds policy decision traces.
[[nodiscard]] int run_bundled_scenario(std::string_view name, bool verbose = false);

}  // namespace pam
