// Scenario specifications — the experiment layer's configuration language.
//
// A scenario is a self-contained description of one experiment: which chain
// (or chains) to deploy, what traffic to offer, which policy to run, how
// long to simulate, and how to measure.  Scenarios are written in a small
// INI-style text format (`.scn` files, see the grammar below) so that every
// figure/table of the paper — and every workload beyond it — is a reviewable
// text file under `scenarios/`, not setup code copy-pasted across benches.
//
// Format:
//
//   # comment                      (full-line comments only)
//   [section]
//   key = value
//
// Sections and keys by scenario kind (see docs/REPRODUCING.md for the
// worked examples):
//
//   [scenario]   name, kind (compare|capacity|timeline|deployment|cluster|
//                churn|failure|hostile),
//                description, note (repeatable), chain (chain-spec string),
//                plan_rate_gbps, measure (analytic|des|both),
//                duration_ms, warmup_ms, seed
//   [traffic]    arrival (cbr|poisson), sizes (fixed N | imix |
//                uniform LO HI | sweep), rate (constant G | step B A at_ms=T
//                | sinusoid BASE AMP period_ms=P
//                | flash BASE PEAK at_ms=T for_ms=D; timeline scenarios only)
//   [policy]     name (registered policy, inline params allowed),
//                param.KEY = NUMBER (repeatable per key), scale_in,
//                scale_in.param.KEY       — timeline + cluster
//   [variant]    label, policy (registered name[:key=val,...]),
//                measure_rate (G | plan | cap x M)    — repeatable; compare
//   [capacity]   nfs, locations, loss_threshold, search_iters, size_bytes
//   [controller] trigger_utilization, scale_in_below, period_ms,
//                first_check_ms, cooldown_ms          — timeline
//   [chain]      name, spec, offered_gbps,
//                server, policy (fleet kinds only),
//                arrive_ms, depart_ms, rate (churn only)
//                — repeatable; deployment + fleet kinds
//   [deployment] burst_multiplier, scale_out_headroom
//   [cluster]    servers, rebalance (on|off), inter_server_us,
//                trigger_utilization, target_max_load, period_ms,
//                first_check_ms, cooldown_ms       — all fleet kinds
//   [failure]    fail = SERVER at_ms=T [recover_ms=U]   — repeatable; failure
//   [link]       fabric = at_ms=T delay_us=D,
//                fade = SERVER at_ms=T speed=F     — repeatable; hostile
//
// "Fleet kinds" are the multi-server DES kinds sharing the [cluster] rack
// model: cluster, churn, failure, hostile.
//
// Policies are named, not enumerated: every `policy`/`name` value is
// resolved against control/policy_registry.hpp at parse time, so an unknown
// policy (or parameter key) is a strict error listing what IS registered —
// never a silent fallback.
//
// Parsing is strict: unknown sections/keys, duplicate scalar sections,
// duplicate keys, and missing required fields are all reported as errors
// with the offending line.  `ScenarioSpec::to_text()` emits a canonical
// rendering that parses back to an equal spec (round-trip property, covered
// by tests/test_scenario_spec.cpp).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "control/policy_registry.hpp"
#include "nf/nf_spec.hpp"
#include "trafficgen/traffic_source_config.hpp"

namespace pam {

/// What shape of experiment a scenario describes.
enum class ScenarioKind : std::uint8_t {
  kCompare,     ///< one chain, N policy variants, analytic and/or DES measurement
  kCapacity,    ///< per-NF isolated capacity search (the paper's Table 1 method)
  kTimeline,    ///< one chain driven by a time-varying rate under the controller
  kDeployment,  ///< multi-chain deployment: multi-chain PAM + scale-out sizing
  kCluster,     ///< N servers x M chains under the fleet controller (DES)
  kChurn,       ///< cluster + tenants arriving/departing with diurnal/flash rates
  kFailure,     ///< cluster + server death/recovery forcing loss-free evacuation
  kHostile,     ///< cluster + trace-shaped fabric delay and capacity fades
};

/// True for the multi-server kinds that share the [cluster] rack model and
/// run path (cluster, churn, failure, hostile).
[[nodiscard]] constexpr bool is_fleet_kind(ScenarioKind kind) noexcept {
  return kind == ScenarioKind::kCluster || kind == ScenarioKind::kChurn ||
         kind == ScenarioKind::kFailure || kind == ScenarioKind::kHostile;
}

/// Whether a compare scenario evaluates the closed-form model, the DES, or both.
enum class MeasureMode : std::uint8_t { kAnalytic, kDes, kBoth };

[[nodiscard]] std::string_view to_string(ScenarioKind kind) noexcept;
[[nodiscard]] std::string_view to_string(MeasureMode mode) noexcept;

/// Packet-size selection for the traffic source.
struct SizeSpec {
  enum class Kind : std::uint8_t {
    kFixed,       ///< every packet `fixed` bytes
    kImix,        ///< 7:4:1 Internet mix
    kUniform,     ///< uniform in [lo, hi]
    kPaperSweep,  ///< one DES run per size of the paper's 64B..1500B sweep
  };

  Kind kind = Kind::kFixed;
  std::size_t fixed = 512;
  std::size_t lo = 64;
  std::size_t hi = 1500;

  [[nodiscard]] bool operator==(const SizeSpec&) const = default;
};

/// Offered-load-over-time profile (timeline scenarios; per-chain in churn).
struct RateSpec {
  enum class Kind : std::uint8_t { kConstant, kStep, kSinusoid, kFlash };

  Kind kind = Kind::kConstant;
  double a = 1.0;         ///< constant rate / step "before" / sinusoid base / flash base (Gbps)
  double b = 0.0;         ///< step "after" / sinusoid amplitude / flash peak (Gbps)
  double at_ms = 0.0;     ///< step time / flash-crowd onset
  double period_ms = 0.0; ///< sinusoid period
  double for_ms = 0.0;    ///< flash-crowd duration

  [[nodiscard]] bool operator==(const RateSpec&) const = default;
};

/// The rate a compare variant is measured at (policies always *plan* at the
/// scenario's plan_rate_gbps; measurement may differ, e.g. Figure 2(a)
/// measures "Original" at the pre-spike baseline).
struct MeasureRate {
  enum class Kind : std::uint8_t {
    kGbps,      ///< absolute rate in `value`
    kPlanRate,  ///< the scenario's plan_rate_gbps
    kCapTimes,  ///< `value` x the variant's analytic capacity (saturation runs)
  };

  Kind kind = Kind::kPlanRate;
  double value = 0.0;

  [[nodiscard]] bool operator==(const MeasureRate&) const = default;
};

/// The traffic source: arrival process, packet sizes, and (for timeline
/// scenarios) the offered-load profile.
struct TrafficSpec {
  ArrivalProcess arrival = ArrivalProcess::kCbr;
  SizeSpec sizes;
  RateSpec rate;

  [[nodiscard]] bool operator==(const TrafficSpec&) const = default;
};

/// One configuration of a compare scenario: a policy plus the rate it is
/// measured at.
struct VariantSpec {
  std::string label;
  PolicyConfig policy{"none", {}};  ///< registry name + tuning parameters
  MeasureRate measure_rate;

  [[nodiscard]] bool operator==(const VariantSpec&) const = default;
};

/// Capacity-scenario parameters (Table 1 reproduction).
struct CapacitySpec {
  std::vector<NfType> nfs;           ///< NF types to measure in isolation
  std::vector<Location> locations;   ///< devices to place each NF on
  double loss_threshold = 0.005;     ///< "negligible loss" bound
  int search_iters = 12;             ///< binary-search refinement steps
  std::size_t size_bytes = 512;      ///< fixed frame size for the search

  [[nodiscard]] bool operator==(const CapacitySpec&) const = default;
};

/// Controller loop parameters (timeline scenarios); mirrors
/// ControlPlaneOptions.  The policies themselves come from [policy].
struct ControllerSpec {
  double trigger_utilization = 1.0;
  double scale_in_below = 0.0;  ///< 0 disables the calm direction
  double period_ms = 10.0;
  double first_check_ms = 10.0;
  double cooldown_ms = 20.0;

  [[nodiscard]] bool operator==(const ControllerSpec&) const = default;
};

/// One tenant chain of a deployment or fleet scenario.
struct ChainDecl {
  std::string name;
  std::string spec;          ///< chain-spec string (see chain/chain_spec.hpp)
  double offered_gbps = 1.0;
  /// Home rack slot (fleet kinds only).  -1 = assign round-robin by
  /// declaration order.
  std::int64_t server = -1;
  /// Per-chain policy override (fleet kinds only); empty name =
  /// inherit the scenario's [policy].
  PolicyConfig policy;
  /// Tenant lifetime (churn scenarios only): the traffic source starts at
  /// arrive_ms and dies at depart_ms (-1 = stays for the whole run).
  double arrive_ms = 0.0;
  double depart_ms = -1.0;
  /// Per-chain offered-load profile (churn only); when unset the chain
  /// offers a constant offered_gbps.
  bool has_rate = false;
  RateSpec rate;

  [[nodiscard]] bool operator==(const ChainDecl&) const = default;
};

/// One server death (and optional recovery) in a failure scenario.
struct FailureEvent {
  std::size_t server = 0;
  double at_ms = 0.0;        ///< death time
  double recover_ms = -1.0;  ///< recovery time; -1 = stays dead

  [[nodiscard]] bool operator==(const FailureEvent&) const = default;
};

/// Trace-shaped link behaviour for hostile scenarios: a rack-fabric delay
/// schedule plus per-slot capacity fades (mmWave-style deep fades).
struct LinkTraceSpec {
  struct FabricPoint {
    double at_ms = 0.0;
    double delay_us = 50.0;  ///< one-way fabric latency from at_ms onward

    [[nodiscard]] bool operator==(const FabricPoint&) const = default;
  };
  struct SlotFade {
    std::size_t server = 0;
    double at_ms = 0.0;
    double speed = 1.0;  ///< NIC+CPU service-rate multiplier from at_ms onward

    [[nodiscard]] bool operator==(const SlotFade&) const = default;
  };

  std::vector<FabricPoint> fabric;
  std::vector<SlotFade> fades;

  [[nodiscard]] bool empty() const noexcept {
    return fabric.empty() && fades.empty();
  }
  [[nodiscard]] bool operator==(const LinkTraceSpec&) const = default;
};

/// Deployment-scenario parameters.
struct DeploymentSpec {
  double burst_multiplier = 2.0;    ///< load multiplier for scale-out sizing
  double scale_out_headroom = 0.9;  ///< per-replica utilisation ceiling

  [[nodiscard]] bool operator==(const DeploymentSpec&) const = default;
};

/// Cluster-scenario parameters; mirrors FleetControllerOptions where named.
struct ClusterSpec {
  std::size_t servers = 2;          ///< rack slots simulated
  bool rebalance = true;            ///< arm the fleet controller
  double inter_server_us = 50.0;    ///< one-way rack-fabric forwarding latency
  double trigger_utilization = 1.0;
  /// Scale-out target slots must stay below this projected load.
  double target_max_load = 0.9;
  double period_ms = 10.0;
  double first_check_ms = 10.0;
  double cooldown_ms = 20.0;

  // --- sharded datacenter mode (shards > 1) ---------------------------------
  /// Kernel shards (racks).  1 = the classic single-kernel rack; > 1
  /// partitions the fleet into `shards` racks of servers/shards slots each,
  /// advancing in lock-step epochs (sim/datacenter_simulator.hpp).
  std::size_t shards = 1;
  /// Worker threads for the epoch executor; results are bit-identical for
  /// any value.  Only meaningful (and only accepted) when shards > 1.
  std::size_t threads = 1;
  /// One-way cross-rack fabric latency == the epoch quantum (lookahead).
  double cross_rack_us = 100.0;
  /// Arm the DatacenterOrchestrator (cross-rack leases) above the per-rack
  /// fleet controllers.
  bool orchestrate = true;

  [[nodiscard]] bool operator==(const ClusterSpec&) const = default;
};

/// A fully parsed scenario.  Plain data: the runner (scenario_runner.hpp)
/// turns it into library objects; the sink (metrics_sink.hpp) echoes it into
/// the JSON output for provenance.
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::vector<std::string> notes;  ///< free-form lines echoed after reports

  ScenarioKind kind = ScenarioKind::kCompare;
  std::string chain;            ///< chain-spec string (compare/timeline)
  double plan_rate_gbps = 2.2;  ///< rate the policies plan at
  MeasureMode measure = MeasureMode::kBoth;
  double duration_ms = 80.0;    ///< DES horizon
  double warmup_ms = 15.0;      ///< DES warmup excluded from metrics
  std::uint64_t seed = 1;

  TrafficSpec traffic;
  /// The control loop's policy ([policy] name/param.*; timeline + cluster).
  PolicyConfig policy{"pam", {}};
  /// Calm-direction policy ([policy] scale_in*); "none" disables drain.
  PolicyConfig scale_in{"none", {}};
  std::vector<VariantSpec> variants;  ///< compare scenarios
  CapacitySpec capacity;              ///< capacity scenarios
  ControllerSpec controller;          ///< timeline scenarios
  std::vector<ChainDecl> chains;      ///< deployment + fleet scenarios
  DeploymentSpec deployment;          ///< deployment scenarios
  ClusterSpec cluster;                ///< fleet scenarios
  std::vector<FailureEvent> failures; ///< failure scenarios
  LinkTraceSpec link;                 ///< hostile scenarios

  [[nodiscard]] bool operator==(const ScenarioSpec&) const = default;

  /// Parses `text`; `origin` names the source (file path) in error messages.
  /// Validates chain-spec strings, required fields, and section/key use.
  [[nodiscard]] static Result<ScenarioSpec> parse(std::string_view text,
                                                  std::string_view origin = "<string>");

  /// Canonical rendering; parse(to_text()) == *this (round-trip property).
  [[nodiscard]] std::string to_text() const;

  /// Copy with every rate scaled by `factor` (plan rate, absolute variant
  /// measure rates, timeline rate profile, deployment offered loads).  Used
  /// by `pam_exp sweep`.
  [[nodiscard]] ScenarioSpec scaled(double factor) const;

  /// Copy re-pointed at `policy` — the CLI's `--policy` override.  Replaces
  /// the scenario default, clears per-chain overrides, and re-points every
  /// compare variant (labels become the policy's text form).  The scale-in
  /// policy is left alone.
  [[nodiscard]] ScenarioSpec with_policy(const PolicyConfig& policy) const;
};

}  // namespace pam
