#include "experiment/invariants.hpp"

#include <algorithm>
#include <cstddef>
#include <map>

#include "common/strings.hpp"

namespace pam {

namespace {

void add(InvariantReport& report, const char* invariant, std::string detail) {
  report.violations.push_back(InvariantViolation{invariant, std::move(detail)});
}

// --- conservation -----------------------------------------------------------

void check_conservation(const MeasuredRun& run, const std::string& where,
                        InvariantReport& report) {
  const std::uint64_t accounted =
      run.delivered + run.dropped_total() + run.in_flight_at_end;
  if (run.injected != accounted) {
    add(report, "conservation",
        format("%s: injected %llu != delivered %llu + dropped %llu + "
               "in-flight %llu (off by %lld)",
               where.c_str(), static_cast<unsigned long long>(run.injected),
               static_cast<unsigned long long>(run.delivered),
               static_cast<unsigned long long>(run.dropped_total()),
               static_cast<unsigned long long>(run.in_flight_at_end),
               static_cast<long long>(run.injected) -
                   static_cast<long long>(accounted)));
  }
}

// --- nf-state ---------------------------------------------------------------

/// Instance names out of a ServiceChain::describe() string:
/// "wire ->[S]fw ->[C]dpi -> host" -> {"fw", "dpi"}.  Sorted, so equal
/// vectors mean equal multisets.
std::vector<std::string> nf_names(const std::string& described) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while ((pos = described.find("->[", pos)) != std::string::npos) {
    const std::size_t close = described.find(']', pos);
    if (close == std::string::npos) {
      break;
    }
    std::size_t end = described.find(' ', close);
    if (end == std::string::npos) {
      end = described.size();
    }
    names.push_back(described.substr(close + 1, end - close - 1));
    pos = end;
  }
  std::sort(names.begin(), names.end());
  return names;
}

void check_nf_state(const std::string& before, const std::string& after,
                    const std::string& where, InvariantReport& report) {
  const std::vector<std::string> names_before = nf_names(before);
  const std::vector<std::string> names_after = nf_names(after);
  if (names_before == names_after) {
    return;
  }
  std::string lost;
  std::string gained;
  for (const auto& name : names_before) {
    if (std::count(names_after.begin(), names_after.end(), name) <
        std::count(names_before.begin(), names_before.end(), name)) {
      lost += lost.empty() ? name : ", " + name;
    }
  }
  for (const auto& name : names_after) {
    if (std::count(names_before.begin(), names_before.end(), name) <
        std::count(names_after.begin(), names_after.end(), name)) {
      gained += gained.empty() ? name : ", " + name;
    }
  }
  add(report, "nf-state",
      format("%s: NF instances changed across the run (lost: %s; gained: %s) "
             "— before '%s', after '%s'",
             where.c_str(), lost.empty() ? "none" : lost.c_str(),
             gained.empty() ? "none" : gained.c_str(), before.c_str(),
             after.c_str()));
}

// --- control log (monotone-events, cooldown, single-flight) -----------------

bool is_completion(const ControlEvent& event) {
  switch (event.kind) {
    case ControlEvent::Kind::kMigrated:
    case ControlEvent::Kind::kCrossServerMove:
    case ControlEvent::Kind::kCrossRackMove:
    case ControlEvent::Kind::kEvacuated:
      return true;
    case ControlEvent::Kind::kInfeasible:
      // A dead-target abort resumes in place and anchors the cooldown just
      // like a completed move.
      return event.detail.find("aborted") != std::string::npos;
    default:
      return false;
  }
}

void check_events(const std::vector<ControlEvent>& events, double duration_ms,
                  double cooldown_ms, bool fleet, InvariantReport& report) {
  // monotone-events: the log is appended in simulated-time order.
  SimTime last = SimTime::zero();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ControlEvent& event = events[i];
    if (event.at < last) {
      add(report, "monotone-events",
          format("event %zu (%s, chain %zu) at %.4f ms precedes event %zu "
                 "at %.4f ms",
                 i, std::string{to_string(event.kind)}.c_str(), event.chain,
                 event.at.ms(), i - 1, last.ms()));
    }
    last = std::max(last, event.at);
    // Loop entries only fire while the kernel is live; completions of
    // actions started before the horizon may trail into the post-horizon
    // drain (the kernel runs the queue dry so conservation holds), but not
    // unboundedly.
    const bool is_entry = event.kind == ControlEvent::Kind::kTriggered ||
                          event.kind == ControlEvent::Kind::kPlanned ||
                          event.kind == ControlEvent::Kind::kScaleIn ||
                          event.kind == ControlEvent::Kind::kScaleOut;
    const double slack_ms = is_entry ? 0.0 : 50.0;
    if (event.at.ms() > duration_ms + slack_ms + 1e-6) {
      add(report, "monotone-events",
          format("event %zu (%s, chain %zu) at %.4f ms is past the %.4f ms "
                 "run horizon%s",
                 i, std::string{to_string(event.kind)}.c_str(), event.chain,
                 event.at.ms(), duration_ms,
                 is_entry ? "" : " (+50 ms drain slack)"));
    }
  }

  // cooldown: a completed action on a chain quiets that chain's loop.
  std::map<std::size_t, SimTime> last_completion;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ControlEvent& event = events[i];
    const bool is_loop_entry = event.kind == ControlEvent::Kind::kTriggered ||
                               event.kind == ControlEvent::Kind::kScaleIn;
    if (is_loop_entry) {
      const auto anchor = last_completion.find(event.chain);
      if (anchor != last_completion.end()) {
        const double since_ms = event.at.ms() - anchor->second.ms();
        if (since_ms < cooldown_ms - 1e-6) {
          add(report, "cooldown",
              format("event %zu: chain %zu %s at %.4f ms, only %.4f ms after "
                     "its last completed action (cooldown is %.4f ms)",
                     i, event.chain,
                     std::string{to_string(event.kind)}.c_str(), event.at.ms(),
                     since_ms, cooldown_ms));
        }
      }
    }
    if (is_completion(event)) {
      last_completion[event.chain] = event.at;
    }
  }

  // single-flight: per chain, at most one visible action between open
  // (planned / scale-in / fleet scale-out) and close (its completion).
  // Evacuations open without an event of their own, so their completions
  // only ever *close*; the depth is clamped at zero to absorb that.
  std::map<std::size_t, std::size_t> depth;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ControlEvent& event = events[i];
    std::size_t& open = depth[event.chain];
    switch (event.kind) {
      case ControlEvent::Kind::kTriggered:
        if (open > 0) {
          add(report, "single-flight",
              format("event %zu: chain %zu triggered at %.4f ms while %zu "
                     "action(s) are still in flight",
                     i, event.chain, event.at.ms(), open));
        }
        break;
      case ControlEvent::Kind::kPlanned:
      case ControlEvent::Kind::kScaleIn:
        if (open > 0) {
          add(report, "single-flight",
              format("event %zu: chain %zu opened a second action (%s) at "
                     "%.4f ms with %zu still in flight",
                     i, event.chain, std::string{to_string(event.kind)}.c_str(),
                     event.at.ms(), open));
        }
        ++open;
        break;
      case ControlEvent::Kind::kScaleOut:
        // Single-server controllers only *record* the request; the fleet
        // actuator starts a real cross-server transfer.
        if (fleet) {
          if (open > 0) {
            add(report, "single-flight",
                format("event %zu: chain %zu started a scale-out move at "
                       "%.4f ms with %zu action(s) still in flight",
                       i, event.chain, event.at.ms(), open));
          }
          ++open;
        }
        break;
      case ControlEvent::Kind::kMigrated:
      case ControlEvent::Kind::kCrossServerMove:
      case ControlEvent::Kind::kCrossRackMove:
        if (open > 0) {
          --open;
        }
        break;
      case ControlEvent::Kind::kInfeasible:
        if (open > 0 && is_completion(event)) {
          --open;
        }
        break;
      case ControlEvent::Kind::kEvacuated:
        break;  // opened invisibly by on_server_failed; nothing to match
    }
  }
}

}  // namespace

std::string InvariantReport::describe() const {
  if (violations.empty()) {
    return "all invariants hold";
  }
  std::string out;
  for (const auto& violation : violations) {
    out += violation.invariant + ": " + violation.detail + "\n";
  }
  return out;
}

InvariantReport check_invariants(const RunResult& result) {
  InvariantReport report;
  const ScenarioSpec& spec = result.spec;

  for (const VariantResult& vr : result.variants) {
    for (std::size_t r = 0; r < vr.runs.size(); ++r) {
      check_conservation(vr.runs[r],
                         format("variant '%s' run %zu", vr.label.c_str(), r),
                         report);
    }
    check_nf_state(vr.chain_before, vr.chain_after,
                   format("variant '%s'", vr.label.c_str()), report);
  }

  if (result.timeline) {
    const TimelineResult& tl = *result.timeline;
    check_conservation(tl.metrics, "timeline metrics", report);
    check_nf_state(tl.chain_before, tl.chain_after, "timeline chain", report);
    check_events(tl.events, spec.duration_ms, spec.controller.cooldown_ms,
                 /*fleet=*/false, report);
  }

  if (result.deployment) {
    for (const DeploymentChainResult& cr : result.deployment->chains) {
      check_nf_state(cr.chain_before, cr.chain_after,
                     format("deployment chain '%s'", cr.name.c_str()), report);
    }
  }

  if (result.cluster) {
    const ClusterResult& cr = *result.cluster;
    for (const ClusterChainResult& chain : cr.chains) {
      check_conservation(chain.metrics,
                         format("chain '%s'", chain.name.c_str()), report);
      check_nf_state(chain.chain_before, chain.chain_after,
                     format("chain '%s'", chain.name.c_str()), report);
    }
    check_conservation(cr.fleet, "fleet aggregate", report);
    if (!cr.conserved) {
      add(report, "conservation",
          "cluster report's own conservation flag is false");
    }
    check_events(cr.events, spec.duration_ms, spec.cluster.cooldown_ms,
                 /*fleet=*/true, report);
    if (cr.shards > 1) {
      // shard-totals: every packet the fleet accounts for is accounted for
      // by exactly one shard — the sharded run hides nothing in the fabric.
      std::uint64_t injected = 0;
      std::uint64_t delivered = 0;
      std::uint64_t dropped = 0;
      std::uint64_t in_flight = 0;
      for (const ClusterShardResult& shard : cr.shard_totals) {
        injected += shard.injected;
        delivered += shard.delivered;
        dropped += shard.dropped;
        in_flight += shard.in_flight_at_end;
      }
      if (cr.shard_totals.size() != cr.shards) {
        add(report, "shard-totals",
            format("report has %zu shard entries for %zu shards",
                   cr.shard_totals.size(), cr.shards));
      }
      if (injected != cr.fleet.injected || delivered != cr.fleet.delivered ||
          dropped != cr.fleet.dropped_total() ||
          in_flight != cr.fleet.in_flight_at_end) {
        add(report, "shard-totals",
            format("per-shard sums (injected %llu, delivered %llu, dropped "
                   "%llu, in-flight %llu) != fleet totals (injected %llu, "
                   "delivered %llu, dropped %llu, in-flight %llu)",
                   static_cast<unsigned long long>(injected),
                   static_cast<unsigned long long>(delivered),
                   static_cast<unsigned long long>(dropped),
                   static_cast<unsigned long long>(in_flight),
                   static_cast<unsigned long long>(cr.fleet.injected),
                   static_cast<unsigned long long>(cr.fleet.delivered),
                   static_cast<unsigned long long>(cr.fleet.dropped_total()),
                   static_cast<unsigned long long>(cr.fleet.in_flight_at_end)));
      }
    }
  }

  return report;
}

}  // namespace pam
