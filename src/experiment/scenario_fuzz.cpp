#include "experiment/scenario_fuzz.hpp"

#include <fstream>
#include <functional>
#include <sstream>
#include <utility>

#include "common/strings.hpp"
#include "experiment/invariants.hpp"
#include "experiment/metrics_sink.hpp"
#include "experiment/scenario_runner.hpp"

namespace pam {

namespace {

// --- digest -----------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const std::string& bytes) {
  for (const char byte : bytes) {
    h ^= static_cast<unsigned char>(byte);
    h *= kFnvPrime;
  }
  return h;
}

// --- generation -------------------------------------------------------------

constexpr const char* kNfTypes[] = {"Firewall",     "Logger", "Monitor",
                                    "LoadBalancer", "NAT",    "DPI",
                                    "RateLimiter",  "Encryptor"};

/// A random valid chain-spec string: wire ingress, 1..3 nodes on either
/// device, wire or host egress.  Every NF type has nonzero capacity on both
/// devices (capacity table), so any placement simulates.
std::string random_chain_text(Rng& rng) {
  const std::size_t n = 1 + rng.bounded(3);
  std::string nodes;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) {
      nodes += " ";
    }
    nodes += rng.chance(0.6) ? "S:" : "C:";
    nodes += kNfTypes[rng.bounded(8)];
  }
  return "wire | " + nodes + (rng.chance(0.5) ? " | wire" : " | host");
}

/// Gbps on a 0.25 grid so fmt_double round-trips exactly.
double random_gbps(Rng& rng, double lo, double hi) {
  const auto steps = static_cast<std::uint64_t>((hi - lo) / 0.25);
  return lo + 0.25 * static_cast<double>(rng.bounded(steps + 1));
}

/// Integer milliseconds in [lo, hi].
double random_ms(Rng& rng, double lo, double hi) {
  return lo + static_cast<double>(
                  rng.bounded(static_cast<std::uint64_t>(hi - lo) + 1));
}

/// A random offered-load profile spanning all four RateSpec kinds, with
/// every knot inside the run horizon.
RateSpec random_rate(Rng& rng, double duration_ms) {
  RateSpec rate;
  switch (rng.bounded(4)) {
    case 0:
      rate.kind = RateSpec::Kind::kConstant;
      rate.a = random_gbps(rng, 0.5, 2.5);
      break;
    case 1:
      rate.kind = RateSpec::Kind::kStep;
      rate.a = random_gbps(rng, 0.5, 1.5);
      rate.b = rate.a + random_gbps(rng, 1.0, 2.0);
      rate.at_ms = random_ms(rng, 1.0, duration_ms - 2.0);
      break;
    case 2:
      rate.kind = RateSpec::Kind::kSinusoid;
      rate.a = random_gbps(rng, 1.0, 2.0);
      rate.b = random_gbps(rng, 0.5, 1.5);
      rate.period_ms = random_ms(rng, 4.0, duration_ms);
      break;
    default:
      rate.kind = RateSpec::Kind::kFlash;
      rate.a = random_gbps(rng, 0.5, 1.25);
      rate.b = rate.a + random_gbps(rng, 1.5, 2.5);
      rate.at_ms = random_ms(rng, 1.0, duration_ms / 2.0);
      rate.for_ms = random_ms(rng, 1.0, duration_ms / 2.0);
      break;
  }
  return rate;
}

PolicyConfig random_policy(Rng& rng) {
  constexpr const char* kPolicies[] = {"pam", "naive", "naive-min"};
  return PolicyConfig{kPolicies[rng.bounded(3)], {}};
}

void random_loop_knobs(Rng& rng, double& trigger, double& period_ms,
                       double& first_check_ms, double& cooldown_ms) {
  constexpr double kTriggers[] = {0.8, 0.9, 1.0};
  trigger = kTriggers[rng.bounded(3)];
  period_ms = rng.chance(0.5) ? 2.0 : 5.0;
  first_check_ms = period_ms;
  cooldown_ms = rng.chance(0.5) ? 4.0 : 10.0;
}

void generate_fleet(Rng& rng, ScenarioSpec& spec) {
  spec.cluster.servers = 2 + rng.bounded(3);
  spec.cluster.rebalance =
      spec.kind == ScenarioKind::kFailure || rng.chance(0.8);
  spec.cluster.inter_server_us = rng.chance(0.5) ? 20.0 : 50.0;
  spec.cluster.target_max_load = 0.9;
  random_loop_knobs(rng, spec.cluster.trigger_utilization,
                    spec.cluster.period_ms, spec.cluster.first_check_ms,
                    spec.cluster.cooldown_ms);
  spec.policy = random_policy(rng);

  const std::size_t chains = 1 + rng.bounded(3);
  for (std::size_t i = 0; i < chains; ++i) {
    ChainDecl decl;
    decl.name = format("t%zu", i);
    decl.spec = random_chain_text(rng);
    // An occasional hot tenant so trigger/scale-out/evacuation paths see
    // real traffic, not just idle slots.
    decl.offered_gbps =
        rng.chance(0.25) ? 2.75 : random_gbps(rng, 0.5, 2.0);
    if (rng.chance(0.5)) {
      decl.server = static_cast<std::int64_t>(rng.bounded(spec.cluster.servers));
    }
    if (spec.kind == ScenarioKind::kChurn) {
      if (rng.chance(0.6)) {
        decl.arrive_ms = random_ms(rng, 0.0, spec.duration_ms / 2.0);
      }
      if (rng.chance(0.6)) {
        decl.depart_ms =
            decl.arrive_ms + random_ms(rng, 1.0, spec.duration_ms / 2.0);
      }
      if (rng.chance(0.5)) {
        decl.has_rate = true;
        decl.rate = random_rate(rng, spec.duration_ms);
      }
    }
    spec.chains.push_back(std::move(decl));
  }

  if (spec.kind == ScenarioKind::kFailure) {
    const std::size_t events = 1 + rng.bounded(2);
    for (std::size_t i = 0; i < events; ++i) {
      FailureEvent ev;
      ev.server = rng.bounded(spec.cluster.servers);
      ev.at_ms = random_ms(rng, 1.0, spec.duration_ms - 2.0);
      if (rng.chance(0.5)) {
        ev.recover_ms = ev.at_ms + random_ms(rng, 1.0, spec.duration_ms);
      }
      spec.failures.push_back(ev);
    }
  }

  if (spec.kind == ScenarioKind::kHostile) {
    const std::size_t points = 1 + rng.bounded(2);
    for (std::size_t i = 0; i < points; ++i) {
      LinkTraceSpec::FabricPoint point;
      point.at_ms = random_ms(rng, 1.0, spec.duration_ms - 1.0);
      point.delay_us = 20.0 + 20.0 * static_cast<double>(rng.bounded(10));
      spec.link.fabric.push_back(point);
    }
    const std::size_t fades = rng.bounded(3);
    constexpr double kSpeeds[] = {0.4, 0.55, 0.7};
    for (std::size_t i = 0; i < fades; ++i) {
      LinkTraceSpec::SlotFade fade;
      fade.server = rng.bounded(spec.cluster.servers);
      fade.at_ms = random_ms(rng, 1.0, spec.duration_ms - 1.0);
      fade.speed = kSpeeds[rng.bounded(3)];
      spec.link.fades.push_back(fade);
    }
  }
}

}  // namespace

ScenarioSpec generate_random_spec(Rng& rng, std::size_t index, bool quick) {
  constexpr ScenarioKind kKinds[] = {
      ScenarioKind::kCompare, ScenarioKind::kCapacity,
      ScenarioKind::kTimeline, ScenarioKind::kDeployment,
      ScenarioKind::kCluster, ScenarioKind::kChurn,
      ScenarioKind::kFailure, ScenarioKind::kHostile};

  ScenarioSpec spec;
  spec.kind = kKinds[rng.bounded(8)];
  spec.name = format("fuzz-%zu", index);
  spec.seed = rng.uniform_u64(1, 1u << 20);
  spec.duration_ms = quick ? 6.0 + 2.0 * static_cast<double>(rng.bounded(5))
                           : 20.0 + 5.0 * static_cast<double>(rng.bounded(7));
  spec.warmup_ms = static_cast<double>(rng.bounded(3));
  spec.traffic.arrival =
      rng.chance(0.5) ? ArrivalProcess::kPoisson : ArrivalProcess::kCbr;
  switch (rng.bounded(3)) {
    case 0: {
      constexpr std::size_t kSizes[] = {64, 256, 512, 1024};
      spec.traffic.sizes.kind = SizeSpec::Kind::kFixed;
      spec.traffic.sizes.fixed = kSizes[rng.bounded(4)];
      break;
    }
    case 1:
      spec.traffic.sizes.kind = SizeSpec::Kind::kImix;
      break;
    default:
      spec.traffic.sizes.kind = SizeSpec::Kind::kUniform;
      spec.traffic.sizes.lo = 64;
      spec.traffic.sizes.hi = 1500;
      break;
  }

  switch (spec.kind) {
    case ScenarioKind::kCompare: {
      spec.chain = random_chain_text(rng);
      spec.plan_rate_gbps = random_gbps(rng, 1.0, 3.0);
      const double roll = rng.next_double();
      spec.measure = roll < 0.5   ? MeasureMode::kAnalytic
                     : roll < 0.8 ? MeasureMode::kDes
                                  : MeasureMode::kBoth;
      const std::size_t variants = 1 + rng.bounded(3);
      for (std::size_t v = 0; v < variants; ++v) {
        VariantSpec variant;
        variant.label = format("v%zu", v);
        variant.policy = random_policy(rng);
        if (rng.chance(0.3)) {
          variant.measure_rate.kind = MeasureRate::Kind::kGbps;
          variant.measure_rate.value = random_gbps(rng, 0.5, 2.5);
        }
        spec.variants.push_back(std::move(variant));
      }
      break;
    }
    case ScenarioKind::kCapacity: {
      constexpr NfType kTypes[] = {NfType::kFirewall, NfType::kMonitor,
                                   NfType::kDpi, NfType::kLogger};
      spec.capacity.nfs.push_back(kTypes[rng.bounded(4)]);
      spec.capacity.locations.push_back(
          rng.chance(0.5) ? Location::kSmartNic : Location::kCpu);
      if (rng.chance(0.3)) {
        spec.capacity.locations.push_back(
            spec.capacity.locations.front() == Location::kSmartNic
                ? Location::kCpu
                : Location::kSmartNic);
      }
      spec.capacity.search_iters = 2 + static_cast<int>(rng.bounded(2));
      spec.capacity.size_bytes = rng.chance(0.5) ? 256 : 512;
      break;
    }
    case ScenarioKind::kTimeline: {
      spec.chain = random_chain_text(rng);
      spec.traffic.rate = random_rate(rng, spec.duration_ms);
      spec.policy = random_policy(rng);
      random_loop_knobs(rng, spec.controller.trigger_utilization,
                        spec.controller.period_ms,
                        spec.controller.first_check_ms,
                        spec.controller.cooldown_ms);
      if (rng.chance(0.3)) {
        spec.scale_in = PolicyConfig{"scale-in", {}};
        spec.controller.scale_in_below = 0.3;
      }
      break;
    }
    case ScenarioKind::kDeployment: {
      const std::size_t chains = 1 + rng.bounded(3);
      for (std::size_t i = 0; i < chains; ++i) {
        ChainDecl decl;
        decl.name = format("t%zu", i);
        decl.spec = random_chain_text(rng);
        decl.offered_gbps = random_gbps(rng, 0.5, 2.0);
        spec.chains.push_back(std::move(decl));
      }
      break;
    }
    case ScenarioKind::kCluster:
    case ScenarioKind::kChurn:
    case ScenarioKind::kFailure:
    case ScenarioKind::kHostile:
      generate_fleet(rng, spec);
      break;
  }
  return spec;
}

namespace {

/// One generate->round-trip->execute->audit pass.
struct CaseOutcome {
  bool failed = false;
  bool parse_failed = false;  ///< the failure is in parse/round-trip, not a run
  std::string detail;
  std::uint64_t digest = kFnvOffset;  ///< over scenario text + metrics JSON
};

CaseOutcome run_case(const ScenarioSpec& spec) {
  CaseOutcome out;
  const std::string text = spec.to_text();
  out.digest = fnv1a(out.digest, text);

  auto reparsed = ScenarioSpec::parse(text, "<fuzz>");
  if (!reparsed) {
    out.failed = out.parse_failed = true;
    out.detail = "canonical text failed to parse: " + reparsed.error().what();
    return out;
  }
  if (!(reparsed.value() == spec)) {
    out.failed = out.parse_failed = true;
    out.detail = "round-trip mismatch: parse(to_text()) differs from the spec";
    return out;
  }

  const ScenarioRunner runner;
  auto run = runner.run(spec);
  if (!run) {
    out.failed = true;
    out.detail = "runner error: " + run.error().what();
    return out;
  }

  const InvariantReport report = check_invariants(run.value());
  if (!report.ok()) {
    out.failed = true;
    out.detail = report.describe();
    return out;
  }

  std::ostringstream json;
  write_metrics_json(run.value(), json);
  out.digest = fnv1a(out.digest, json.str());
  return out;
}

/// Whether `candidate` reproduces the original failure class.  Matching the
/// parse/run split keeps the shrinker from "simplifying" a run failure into
/// an unrelated validation error.
bool still_fails(const ScenarioSpec& candidate, bool parse_failed) {
  const CaseOutcome outcome = run_case(candidate);
  return outcome.failed && outcome.parse_failed == parse_failed;
}

/// Greedy one-at-a-time shrink: drop chains, variants, failure events, link
/// points and churn decorations while the failure keeps reproducing.
ScenarioSpec shrink(ScenarioSpec spec, bool parse_failed) {
  int budget = 64;  // candidate evaluations, not accepted edits
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    std::vector<std::function<bool(ScenarioSpec&)>> edits;
    for (std::size_t i = 0; i < spec.chains.size() && spec.chains.size() > 1; ++i) {
      edits.emplace_back([i](ScenarioSpec& s) {
        s.chains.erase(s.chains.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      });
    }
    for (std::size_t i = 0; i < spec.variants.size() && spec.variants.size() > 1;
         ++i) {
      edits.emplace_back([i](ScenarioSpec& s) {
        s.variants.erase(s.variants.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      });
    }
    for (std::size_t i = 0; i < spec.failures.size() && spec.failures.size() > 1;
         ++i) {
      edits.emplace_back([i](ScenarioSpec& s) {
        s.failures.erase(s.failures.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      });
    }
    const std::size_t link_points = spec.link.fabric.size() + spec.link.fades.size();
    for (std::size_t i = 0; i < spec.link.fabric.size() && link_points > 1; ++i) {
      edits.emplace_back([i](ScenarioSpec& s) {
        s.link.fabric.erase(s.link.fabric.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      });
    }
    for (std::size_t i = 0; i < spec.link.fades.size() && link_points > 1; ++i) {
      edits.emplace_back([i](ScenarioSpec& s) {
        s.link.fades.erase(s.link.fades.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      });
    }
    for (std::size_t i = 0; i < spec.chains.size(); ++i) {
      if (spec.chains[i].has_rate) {
        edits.emplace_back([i](ScenarioSpec& s) {
          s.chains[i].has_rate = false;
          s.chains[i].rate = RateSpec{};
          return true;
        });
      }
      if (spec.chains[i].arrive_ms != 0.0 || spec.chains[i].depart_ms >= 0.0) {
        edits.emplace_back([i](ScenarioSpec& s) {
          s.chains[i].arrive_ms = 0.0;
          s.chains[i].depart_ms = -1.0;
          return true;
        });
      }
    }
    if (!spec.notes.empty() || !spec.description.empty()) {
      edits.emplace_back([](ScenarioSpec& s) {
        s.notes.clear();
        s.description.clear();
        return true;
      });
    }
    if (spec.scale_in.name != "none") {
      edits.emplace_back([](ScenarioSpec& s) {
        s.scale_in = PolicyConfig{"none", {}};
        s.controller.scale_in_below = 0.0;
        return true;
      });
    }

    for (const auto& edit : edits) {
      if (budget <= 0) {
        break;
      }
      ScenarioSpec candidate = spec;
      if (!edit(candidate)) {
        continue;
      }
      --budget;
      if (still_fails(candidate, parse_failed)) {
        spec = std::move(candidate);
        progress = true;
        break;  // restart with fresh indices
      }
    }
  }
  return spec;
}

}  // namespace

Result<FuzzOutcome> run_fuzz_campaign(const FuzzOptions& options,
                                      std::FILE* out) {
  if (out == nullptr) {
    out = stdout;
  }
  FuzzOutcome outcome;
  outcome.digest = kFnvOffset;

  for (std::size_t i = 0; i < options.count; ++i) {
    // One derived stream per case: case i's spec never depends on how many
    // cases ran before it.
    Rng rng{Rng::derive(options.seed, i)};
    const ScenarioSpec spec = generate_random_spec(rng, i, options.quick);
    const CaseOutcome result = run_case(spec);
    ++outcome.executed;
    outcome.digest = fnv1a(
        outcome.digest, format("%016llx", static_cast<unsigned long long>(
                                              result.digest)));
    if (options.verbose) {
      std::fprintf(out, "case %3zu [%-10s] %s\n", i,
                   std::string{to_string(spec.kind)}.c_str(),
                   result.failed ? "FAIL" : "ok");
    }
    if (!result.failed) {
      continue;
    }

    ++outcome.failures;
    outcome.first_failure_detail = result.detail;
    std::fprintf(out, "case %zu (%s) FAILED:\n%s\n", i,
                 std::string{to_string(spec.kind)}.c_str(),
                 result.detail.c_str());
    const ScenarioSpec minimal = shrink(spec, result.parse_failed);
    const std::string path =
        options.dump_dir +
        format("/fuzz-fail-seed%llu-case%zu.scn",
               static_cast<unsigned long long>(options.seed), i);
    std::ofstream file{path};
    if (!file) {
      return Error{format("cannot write reproducer to '%s'", path.c_str())};
    }
    file << minimal.to_text();
    file.close();
    outcome.first_failure_path = path;
    std::fprintf(out, "minimal reproducer written to %s\n", path.c_str());
    break;
  }

  std::fprintf(out, "fuzz: %zu/%zu case(s) ok | digest %016llx\n",
               outcome.executed - outcome.failures, options.count,
               static_cast<unsigned long long>(outcome.digest));
  return outcome;
}

}  // namespace pam
