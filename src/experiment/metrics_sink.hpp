// Metrics output: machine-readable JSON for CI trajectories and a
// human-readable report for terminals.
//
// The JSON schema is documented (with examples) in docs/REPRODUCING.md and
// is covered by tests/test_experiment_runner.cpp; treat it as an interface:
// additive changes only, and update the doc in the same commit.

#pragma once

#include <cstdio>
#include <ostream>

#include "common/json_writer.hpp"
#include "experiment/scenario_runner.hpp"

namespace pam {

/// Serializes a RunResult to JSON (schema: docs/REPRODUCING.md).
void write_metrics_json(const RunResult& result, std::ostream& out);

/// Prints the human-readable report for a RunResult to `out` (tables in the
/// style of the paper's figures).  `verbose` adds policy decision traces.
void print_report(const RunResult& result, bool verbose = false,
                  std::FILE* out = nullptr);

}  // namespace pam
