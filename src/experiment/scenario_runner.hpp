// Scenario execution: wires trafficgen -> sim -> core policies -> control
// for one parsed ScenarioSpec and returns a structured RunResult.
//
// The runner is the one place in the tree that knows how to set up an
// experiment; benches and examples are thin wrappers that load a bundled
// scenario and hand it here (see scenario_library.hpp).  Every run is
// deterministic given the scenario's seed: the DES is single-threaded and
// seeded, and no wall-clock time enters the measurement.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "control/control_plane.hpp"
#include "core/migration_plan.hpp"
#include "experiment/scenario_spec.hpp"

namespace pam {

/// Latency distribution summary of one measured DES run, in microseconds.
struct LatencySummary {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  std::uint64_t samples = 0;
};

/// One discrete-event simulation execution (one traffic configuration).
struct MeasuredRun {
  std::size_t size_bytes = 0;  ///< fixed frame size; 0 == mixed (imix/uniform)
  double offered_gbps = 0.0;   ///< rate offered during the measurement window
  double goodput_gbps = 0.0;   ///< egress goodput over the measurement window
  LatencySummary latency;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_queue_nic = 0;
  std::uint64_t dropped_queue_cpu = 0;
  std::uint64_t dropped_queue_pcie = 0;
  std::uint64_t dropped_by_nf = 0;
  std::uint64_t in_flight_at_end = 0;  ///< packets still queued when time ran out
  double mean_crossings_per_packet = 0.0;
  double smartnic_utilization = 0.0;  ///< busy fraction observed by the DES
  double cpu_utilization = 0.0;
  double pcie_utilization = 0.0;

  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_queue_nic + dropped_queue_cpu + dropped_queue_pcie + dropped_by_nf;
  }
};

/// Closed-form model outputs for one chain placement.
struct AnalyticSummary {
  double max_rate_gbps = 0.0;      ///< fluid capacity (max sustainable rate)
  double smartnic_utilization = 0.0;  ///< at the variant's measure rate
  double cpu_utilization = 0.0;
  double pcie_utilization = 0.0;
  std::uint32_t pcie_crossings = 0;   ///< per packet, from the placement
};

/// Result of one compare-scenario variant: the plan the policy produced,
/// the model's view of the migrated chain, and any DES measurements.
struct VariantResult {
  std::string label;
  std::string policy;  ///< the variant's PolicyConfig in text form
  double plan_rate_gbps = 0.0;
  double measure_rate_gbps = 0.0;  ///< resolved (plan / absolute / cap x M)
  std::string chain_before;        ///< describe() of the pre-policy chain
  std::string chain_after;         ///< describe() after the plan is applied
  MigrationPlan plan;              ///< includes the policy's decision trace
  AnalyticSummary analytic;
  std::vector<MeasuredRun> runs;   ///< one per packet size (sweep), else one
};

/// One row of a capacity scenario (one NF on one device).
struct CapacityResult {
  std::string nf;
  std::string device;
  double configured_gbps = 0.0;  ///< θ from the capacity table
  double analytic_gbps = 0.0;    ///< model's max sustainable rate
  double realized_gbps = 0.0;    ///< DES binary-search saturation point
};

/// Result of a timeline scenario: the controller's typed decision log plus
/// the run-wide DES metrics.
struct TimelineResult {
  std::string chain_before;
  std::string chain_after;  ///< placement after all controller actions
  std::vector<ControlEvent> events;  ///< the `control_events` JSON section
  std::size_t migrations_executed = 0;
  bool scale_out_requested = false;
  MeasuredRun metrics;
};

/// Scale-out sizing of one deployment chain at the burst load.
struct DeploymentChainResult {
  std::string name;
  std::string chain_before;
  std::string chain_after;
  double offered_gbps = 0.0;
  double burst_gbps = 0.0;
  std::size_t replicas = 1;
  std::string scale_out_rationale;
};

/// Result of a deployment scenario: aggregate utilisation before/after the
/// multi-chain PAM pass plus per-chain scale-out sizing at the burst load.
struct DeploymentResult {
  double smartnic_before = 0.0;
  double cpu_before = 0.0;
  double smartnic_after = 0.0;
  double cpu_after = 0.0;
  double weighted_crossings_before = 0.0;
  double weighted_crossings_after = 0.0;
  bool feasible = true;
  std::string infeasibility_reason;
  int total_crossing_delta = 0;
  std::vector<std::string> trace;  ///< multi-chain PAM decision log
  std::vector<DeploymentChainResult> chains;
};

/// One chain of a cluster scenario: home slot, placement before/after the
/// fleet controller acted, and the chain's DES metrics.
struct ClusterChainResult {
  std::string name;
  std::size_t home_server = 0;
  std::string chain_before;
  std::string chain_after;
  std::size_t nodes_off_home = 0;  ///< nodes bound to another slot at run end
  /// Nodes leased to another rack at run end (sharded datacenter mode).
  std::size_t nodes_remote = 0;
  std::uint64_t inter_server_hops = 0;
  MeasuredRun metrics;
};

/// One rack slot of a cluster scenario.
struct ClusterServerResult {
  std::size_t server_id = 0;
  std::size_t chains_homed = 0;
  std::size_t nodes_hosted = 0;
  double smartnic_utilization = 0.0;
  double cpu_utilization = 0.0;
  double pcie_utilization = 0.0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

/// One kernel shard (rack) of a sharded datacenter run.
struct ClusterShardResult {
  std::size_t shard = 0;
  std::size_t first_server = 0;  ///< global id of the rack's first slot
  std::size_t servers = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t in_flight_at_end = 0;
  std::uint64_t frames_out = 0;  ///< fabric frames this shard sent
};

/// Result of a cluster scenario: the fleet controller's event log, per-chain
/// and per-server metrics, and the fleet aggregation.
struct ClusterResult {
  std::size_t servers = 0;
  bool rebalance = false;
  std::vector<ControlEvent> events;        ///< fleet controller decisions
  std::size_t migrations_executed = 0;     ///< single-server push-asides
  std::size_t scale_out_moves = 0;         ///< cross-server border-NF moves
  std::size_t evacuations = 0;             ///< NFs moved off failed servers
  std::vector<ClusterChainResult> chains;
  std::vector<ClusterServerResult> per_server;
  MeasuredRun fleet;                       ///< merged fleet-wide metrics
  std::uint64_t inter_server_hops = 0;
  bool conserved = false;

  // --- sharded datacenter mode (shards > 1; all zero/empty otherwise) ------
  std::size_t shards = 1;
  std::size_t cross_rack_moves = 0;        ///< committed cross-rack leases
  std::uint64_t cross_rack_hops = 0;       ///< packets over the shard fabric
  std::uint64_t cross_rack_frames = 0;     ///< frames exchanged at barriers
  std::uint64_t epochs = 0;                ///< lock-step epochs executed
  std::vector<ClusterShardResult> shard_totals;
};

/// Everything one scenario run produced.  Exactly one of the kind-specific
/// payloads is populated, matching spec.kind.
struct RunResult {
  ScenarioSpec spec;
  std::vector<VariantResult> variants;      ///< kind == compare
  std::vector<CapacityResult> capacities;   ///< kind == capacity
  std::optional<TimelineResult> timeline;   ///< kind == timeline
  std::optional<DeploymentResult> deployment;  ///< kind == deployment
  std::optional<ClusterResult> cluster;     ///< fleet kinds (cluster|churn|failure|hostile)
};

/// Executes scenarios.  Stateless; safe to reuse across runs.
class ScenarioRunner {
 public:
  ScenarioRunner() = default;

  /// Runs `spec` to completion.  Errors are configuration-level (e.g. a
  /// chain spec that no longer parses); simulation itself cannot fail.
  /// `threads_override` > 0 replaces [cluster] threads= for this run
  /// (sharded scenarios only — an override on a shards=1 spec is an error);
  /// the thread count never changes results, only wall-clock time.
  [[nodiscard]] Result<RunResult> run(const ScenarioSpec& spec,
                                      std::size_t threads_override = 0) const;
};

}  // namespace pam
