#include "experiment/scenario_library.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"
#include "experiment/metrics_sink.hpp"
#include "experiment/scenario_runner.hpp"

#ifndef PAM_BUNDLED_SCENARIO_DIR
#define PAM_BUNDLED_SCENARIO_DIR "scenarios"
#endif

namespace pam {

namespace fs = std::filesystem;

std::string default_scenario_dir() {
  if (const char* env = std::getenv("PAM_SCENARIOS_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::error_code ec;
  if (fs::is_directory("scenarios", ec)) {
    return "scenarios";
  }
  return PAM_BUNDLED_SCENARIO_DIR;
}

Result<std::vector<std::string>> list_scenarios(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Error{format("scenario directory '%s' not found (set "
                        "PAM_SCENARIOS_DIR or run from the repo root)",
                        dir.c_str())};
  }
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".scn") {
      names.push_back(entry.path().stem().string());
    }
  }
  if (ec) {
    return Error{format("cannot read scenario directory '%s': %s", dir.c_str(),
                        ec.message().c_str())};
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<ScenarioSpec> load_scenario_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    return Error{format("cannot open scenario file '%s'", path.c_str())};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ScenarioSpec::parse(buf.str(), path);
}

Result<ScenarioSpec> load_bundled_scenario(std::string_view name) {
  const std::string path =
      default_scenario_dir() + "/" + std::string{name} + ".scn";
  return load_scenario_file(path);
}

Result<RunResult> execute_bundled_scenario(std::string_view name) {
  auto spec = load_bundled_scenario(name);
  if (!spec) {
    return spec.error();
  }
  const ScenarioRunner runner;
  return runner.run(spec.value());
}

int run_bundled_scenario(std::string_view name, bool verbose) {
  auto result = execute_bundled_scenario(name);
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().what().c_str());
    return 1;
  }
  print_report(result.value(), verbose);
  return 0;
}

}  // namespace pam
