#include "experiment/scenario_spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <unordered_set>

#include "chain/chain_spec.hpp"
#include "common/strings.hpp"

namespace pam {

namespace {

/// Canonical shortest-round-trip rendering (common/strings.hpp), aliased to
/// keep to_text() call sites short.
std::string fmt_double(double v) { return format_double_shortest(v); }

struct KeyValue {
  int line = 0;
  std::string key;
  std::string value;
};

struct Section {
  int line = 0;
  std::string name;
  std::vector<KeyValue> entries;
};

/// Splits on whitespace, dropping empty tokens.
std::vector<std::string> tokens_of(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) {
        out.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    out.push_back(std::move(cur));
  }
  return out;
}

bool parse_u64_strict(std::string_view s, std::uint64_t& out) {
  // strtoull silently wraps negative input, so require plain digits.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string_view::npos) {
    return false;
  }
  const std::string buf{s};
  char* end = nullptr;
  out = std::strtoull(buf.c_str(), &end, 10);
  return *end == '\0';
}

bool parse_size_strict(std::string_view s, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64_strict(s, v)) {
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

/// `prefix=NUMBER` -> NUMBER, e.g. "at_ms=40".
bool parse_tagged_double(std::string_view token, std::string_view tag, double& out) {
  if (token.size() <= tag.size() + 1 || token.substr(0, tag.size()) != tag ||
      token[tag.size()] != '=') {
    return false;
  }
  return parse_double_strict(token.substr(tag.size() + 1), out);
}

/// Parser state: the spec under construction plus everything needed for
/// good error messages and required-field checks.
class SpecParser {
 public:
  SpecParser(std::string_view text, std::string_view origin)
      : text_(text), origin_(origin) {}

  Result<ScenarioSpec> run() {
    if (!lex() || !dispatch_sections() || !validate()) {
      return Error{error_};
    }
    return spec_;
  }

 private:
  [[nodiscard]] bool fail(int line, const std::string& msg) {
    error_ = format("%.*s:%d: %s", static_cast<int>(origin_.size()),
                    origin_.data(), line, msg.c_str());
    return false;
  }
  [[nodiscard]] bool fail_global(const std::string& msg) {
    error_ = format("%.*s: %s", static_cast<int>(origin_.size()),
                    origin_.data(), msg.c_str());
    return false;
  }

  bool lex() {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= text_.size()) {
      const std::size_t eol = text_.find('\n', pos);
      std::string_view line = text_.substr(
          pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
      pos = eol == std::string_view::npos ? text_.size() + 1 : eol + 1;
      ++line_no;

      line = trim(line);
      if (line.empty() || line.front() == '#') {
        continue;
      }
      if (line.front() == '[') {
        if (line.back() != ']' || line.size() < 3) {
          return fail(line_no, format("malformed section header '%.*s'",
                                      static_cast<int>(line.size()), line.data()));
        }
        Section s;
        s.line = line_no;
        s.name = std::string{trim(line.substr(1, line.size() - 2))};
        sections_.push_back(std::move(s));
        continue;
      }
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        return fail(line_no, format("expected 'key = value', got '%.*s'",
                                    static_cast<int>(line.size()), line.data()));
      }
      if (sections_.empty()) {
        return fail(line_no, "key/value before any [section] header");
      }
      KeyValue kv;
      kv.line = line_no;
      kv.key = std::string{trim(line.substr(0, eq))};
      kv.value = std::string{trim(line.substr(eq + 1))};
      if (kv.key.empty()) {
        return fail(line_no, "empty key");
      }
      sections_.back().entries.push_back(std::move(kv));
    }
    return true;
  }

  /// Rejects a second occurrence of a non-repeatable section.
  bool claim_unique(const Section& s) {
    if (!seen_sections_.insert(s.name).second) {
      return fail(s.line, format("duplicate [%s] section", s.name.c_str()));
    }
    return true;
  }

  /// Rejects duplicate keys within one section instance (repeatable keys
  /// such as `note` are handled by their section parser before this check).
  bool no_duplicate_keys(const Section& s, const std::set<std::string>& repeatable = {}) {
    std::set<std::string> seen;
    for (const auto& kv : s.entries) {
      if (repeatable.contains(kv.key)) {
        continue;
      }
      if (!seen.insert(kv.key).second) {
        return fail(kv.line, format("duplicate key '%s' in [%s]", kv.key.c_str(),
                                    s.name.c_str()));
      }
    }
    return true;
  }

  bool dispatch_sections() {
    for (const auto& section : sections_) {
      if (section.name == "scenario") {
        if (!claim_unique(section) || !parse_scenario(section)) return false;
      } else if (section.name == "traffic") {
        if (!claim_unique(section) || !parse_traffic(section)) return false;
      } else if (section.name == "policy") {
        if (!claim_unique(section) || !parse_policy_section(section)) return false;
      } else if (section.name == "variant") {
        if (!parse_variant(section)) return false;
      } else if (section.name == "capacity") {
        if (!claim_unique(section) || !parse_capacity(section)) return false;
      } else if (section.name == "controller") {
        if (!claim_unique(section) || !parse_controller(section)) return false;
      } else if (section.name == "chain") {
        if (!parse_chain_decl(section)) return false;
      } else if (section.name == "deployment") {
        if (!claim_unique(section) || !parse_deployment(section)) return false;
      } else if (section.name == "cluster") {
        if (!claim_unique(section) || !parse_cluster(section)) return false;
      } else if (section.name == "failure") {
        if (!claim_unique(section) || !parse_failure(section)) return false;
      } else if (section.name == "link") {
        if (!claim_unique(section) || !parse_link(section)) return false;
      } else {
        return fail(section.line, format("unknown section [%s]", section.name.c_str()));
      }
    }
    return true;
  }

  bool need_double(const KeyValue& kv, double& out) {
    if (!parse_double_strict(kv.value, out)) {
      return fail(kv.line, format("key '%s': expected a number, got '%s'",
                                  kv.key.c_str(), kv.value.c_str()));
    }
    return true;
  }

  bool parse_scenario(const Section& s) {
    if (!no_duplicate_keys(s, {"note"})) return false;
    for (const auto& kv : s.entries) {
      if (kv.key == "name") {
        spec_.name = kv.value;
      } else if (kv.key == "description") {
        spec_.description = kv.value;
      } else if (kv.key == "note") {
        spec_.notes.push_back(kv.value);
      } else if (kv.key == "kind") {
        kind_seen_ = true;
        if (kv.value == "compare") {
          spec_.kind = ScenarioKind::kCompare;
        } else if (kv.value == "capacity") {
          spec_.kind = ScenarioKind::kCapacity;
        } else if (kv.value == "timeline") {
          spec_.kind = ScenarioKind::kTimeline;
        } else if (kv.value == "deployment") {
          spec_.kind = ScenarioKind::kDeployment;
        } else if (kv.value == "cluster") {
          spec_.kind = ScenarioKind::kCluster;
        } else if (kv.value == "churn") {
          spec_.kind = ScenarioKind::kChurn;
        } else if (kv.value == "failure") {
          spec_.kind = ScenarioKind::kFailure;
        } else if (kv.value == "hostile") {
          spec_.kind = ScenarioKind::kHostile;
        } else {
          return fail(kv.line,
                      format("unknown scenario kind '%s' (expected "
                             "compare|capacity|timeline|deployment|cluster|"
                             "churn|failure|hostile)",
                             kv.value.c_str()));
        }
      } else if (kv.key == "chain") {
        spec_.chain = kv.value;
      } else if (kv.key == "plan_rate_gbps") {
        if (!need_double(kv, spec_.plan_rate_gbps)) return false;
      } else if (kv.key == "measure") {
        if (kv.value == "analytic") {
          spec_.measure = MeasureMode::kAnalytic;
        } else if (kv.value == "des") {
          spec_.measure = MeasureMode::kDes;
        } else if (kv.value == "both") {
          spec_.measure = MeasureMode::kBoth;
        } else {
          return fail(kv.line, format("unknown measure mode '%s' (expected "
                                      "analytic|des|both)",
                                      kv.value.c_str()));
        }
      } else if (kv.key == "duration_ms") {
        if (!need_double(kv, spec_.duration_ms)) return false;
      } else if (kv.key == "warmup_ms") {
        if (!need_double(kv, spec_.warmup_ms)) return false;
      } else if (kv.key == "seed") {
        if (!parse_u64_strict(kv.value, spec_.seed)) {
          return fail(kv.line, format("key 'seed': expected an unsigned integer, "
                                      "got '%s'",
                                      kv.value.c_str()));
        }
      } else {
        return fail(kv.line,
                    format("unknown key '%s' in [scenario]", kv.key.c_str()));
      }
    }
    return true;
  }

  bool parse_sizes(const KeyValue& kv, SizeSpec& out) {
    const auto tok = tokens_of(kv.value);
    if (tok.empty()) {
      return fail(kv.line, "key 'sizes': empty value");
    }
    if (tok[0] == "imix" && tok.size() == 1) {
      out.kind = SizeSpec::Kind::kImix;
    } else if (tok[0] == "sweep" && tok.size() == 1) {
      out.kind = SizeSpec::Kind::kPaperSweep;
    } else if (tok[0] == "fixed" && tok.size() == 2) {
      out.kind = SizeSpec::Kind::kFixed;
      if (!parse_size_strict(tok[1], out.fixed)) {
        return fail(kv.line, format("sizes: bad fixed size '%s'", tok[1].c_str()));
      }
    } else if (tok[0] == "uniform" && tok.size() == 3) {
      out.kind = SizeSpec::Kind::kUniform;
      if (!parse_size_strict(tok[1], out.lo) || !parse_size_strict(tok[2], out.hi) ||
          out.lo > out.hi) {
        return fail(kv.line, format("sizes: bad uniform range '%s %s'",
                                    tok[1].c_str(), tok[2].c_str()));
      }
    } else {
      return fail(kv.line, format("sizes: expected 'fixed N' | 'imix' | "
                                  "'uniform LO HI' | 'sweep', got '%s'",
                                  kv.value.c_str()));
    }
    return true;
  }

  bool parse_rate_profile(const KeyValue& kv, RateSpec& out) {
    const auto tok = tokens_of(kv.value);
    if (tok.size() == 2 && tok[0] == "constant") {
      out.kind = RateSpec::Kind::kConstant;
      if (!parse_double_strict(tok[1], out.a)) {
        return fail(kv.line, format("rate: bad constant rate '%s'", tok[1].c_str()));
      }
      return true;
    }
    if (tok.size() == 4 && tok[0] == "step") {
      out.kind = RateSpec::Kind::kStep;
      if (!parse_double_strict(tok[1], out.a) || !parse_double_strict(tok[2], out.b) ||
          !parse_tagged_double(tok[3], "at_ms", out.at_ms)) {
        return fail(kv.line,
                    format("rate: expected 'step BEFORE AFTER at_ms=T', got '%s'",
                           kv.value.c_str()));
      }
      return true;
    }
    if (tok.size() == 4 && tok[0] == "sinusoid") {
      out.kind = RateSpec::Kind::kSinusoid;
      if (!parse_double_strict(tok[1], out.a) || !parse_double_strict(tok[2], out.b) ||
          !parse_tagged_double(tok[3], "period_ms", out.period_ms)) {
        return fail(kv.line,
                    format("rate: expected 'sinusoid BASE AMP period_ms=P', got '%s'",
                           kv.value.c_str()));
      }
      return true;
    }
    if (tok.size() == 5 && tok[0] == "flash") {
      out.kind = RateSpec::Kind::kFlash;
      if (!parse_double_strict(tok[1], out.a) || !parse_double_strict(tok[2], out.b) ||
          !parse_tagged_double(tok[3], "at_ms", out.at_ms) ||
          !parse_tagged_double(tok[4], "for_ms", out.for_ms) || out.for_ms <= 0.0) {
        return fail(kv.line,
                    format("rate: expected 'flash BASE PEAK at_ms=T for_ms=D' "
                           "with D > 0, got '%s'",
                           kv.value.c_str()));
      }
      return true;
    }
    return fail(kv.line, format("rate: expected 'constant G' | 'step B A at_ms=T' | "
                                "'sinusoid BASE AMP period_ms=P' | "
                                "'flash BASE PEAK at_ms=T for_ms=D', got '%s'",
                                kv.value.c_str()));
  }

  bool parse_traffic(const Section& s) {
    if (!no_duplicate_keys(s)) return false;
    for (const auto& kv : s.entries) {
      if (kv.key == "arrival") {
        if (kv.value == "cbr") {
          spec_.traffic.arrival = ArrivalProcess::kCbr;
        } else if (kv.value == "poisson") {
          spec_.traffic.arrival = ArrivalProcess::kPoisson;
        } else {
          return fail(kv.line, format("unknown arrival process '%s' (expected "
                                      "cbr|poisson)",
                                      kv.value.c_str()));
        }
      } else if (kv.key == "sizes") {
        if (!parse_sizes(kv, spec_.traffic.sizes)) return false;
      } else if (kv.key == "rate") {
        rate_seen_ = true;
        rate_line_ = kv.line;
        if (!parse_rate_profile(kv, spec_.traffic.rate)) return false;
      } else {
        return fail(kv.line,
                    format("unknown key '%s' in [traffic]", kv.key.c_str()));
      }
    }
    return true;
  }

  /// Parses an inline policy value (`NAME[:key=val,...]`) and validates it
  /// against the registry — unknown names/keys are strict errors listing
  /// what is registered (no silent fallback).
  bool parse_policy(const KeyValue& kv, PolicyConfig& out) {
    auto parsed = PolicyConfig::parse(kv.value);
    if (!parsed) {
      return fail(kv.line, parsed.error().what());
    }
    auto valid = PolicyRegistry::instance().validate(parsed.value());
    if (!valid) {
      return fail(kv.line, valid.error().what());
    }
    out = std::move(parsed).value();
    return true;
  }

  /// One `param.KEY = NUMBER` (or `scale_in.param.KEY`) entry.
  bool parse_policy_param(const KeyValue& kv, std::string_view key,
                          PolicyConfig& target) {
    double value = 0.0;
    if (key.empty()) {
      return fail(kv.line, format("key '%s': missing parameter name", kv.key.c_str()));
    }
    if (!parse_double_strict(kv.value, value)) {
      return fail(kv.line, format("key '%s': expected a number, got '%s'",
                                  kv.key.c_str(), kv.value.c_str()));
    }
    if (target.contains(key)) {
      return fail(kv.line, format("policy '%s': duplicate parameter '%.*s'",
                                  target.name.c_str(), static_cast<int>(key.size()),
                                  key.data()));
    }
    target.params.emplace_back(std::string{key}, value);
    return true;
  }

  bool parse_policy_section(const Section& s) {
    policy_line_ = s.line;
    if (!no_duplicate_keys(s)) return false;
    // Two passes: `name`/`scale_in` first (they reset the config, inline
    // params included), then the param.* keys in file order — so key order
    // within the section does not matter.
    for (const auto& kv : s.entries) {
      if (kv.key == "name") {
        if (!parse_policy(kv, spec_.policy)) return false;
      } else if (kv.key == "scale_in") {
        if (!parse_policy(kv, spec_.scale_in)) return false;
      } else if (kv.key.rfind("param.", 0) != 0 &&
                 kv.key.rfind("scale_in.param.", 0) != 0) {
        return fail(kv.line, format("unknown key '%s' in [policy]", kv.key.c_str()));
      }
    }
    for (const auto& kv : s.entries) {
      if (kv.key.rfind("scale_in.param.", 0) == 0) {
        if (!parse_policy_param(kv, std::string_view{kv.key}.substr(15),
                                spec_.scale_in))
          return false;
      } else if (kv.key.rfind("param.", 0) == 0) {
        if (!parse_policy_param(kv, std::string_view{kv.key}.substr(6), spec_.policy))
          return false;
      }
    }
    // Re-validate with the merged param.* keys.
    auto valid = PolicyRegistry::instance().validate(spec_.policy);
    if (!valid) {
      return fail(s.line, valid.error().what());
    }
    valid = PolicyRegistry::instance().validate(spec_.scale_in);
    if (!valid) {
      return fail(s.line, valid.error().what());
    }
    return true;
  }

  bool parse_variant(const Section& s) {
    if (!no_duplicate_keys(s)) return false;
    VariantSpec v;
    for (const auto& kv : s.entries) {
      if (kv.key == "label") {
        v.label = kv.value;
      } else if (kv.key == "policy") {
        if (!parse_policy(kv, v.policy)) return false;
      } else if (kv.key == "measure_rate") {
        const auto tok = tokens_of(kv.value);
        if (tok.size() == 1 && tok[0] == "plan") {
          v.measure_rate.kind = MeasureRate::Kind::kPlanRate;
          v.measure_rate.value = 0.0;
        } else if (tok.size() == 1) {
          v.measure_rate.kind = MeasureRate::Kind::kGbps;
          if (!parse_double_strict(tok[0], v.measure_rate.value)) {
            return fail(kv.line, format("measure_rate: expected Gbps | 'plan' | "
                                        "'cap x M', got '%s'",
                                        kv.value.c_str()));
          }
        } else if (tok.size() == 3 && tok[0] == "cap" && tok[1] == "x") {
          v.measure_rate.kind = MeasureRate::Kind::kCapTimes;
          if (!parse_double_strict(tok[2], v.measure_rate.value)) {
            return fail(kv.line,
                        format("measure_rate: bad capacity multiplier '%s'",
                               tok[2].c_str()));
          }
        } else {
          return fail(kv.line, format("measure_rate: expected Gbps | 'plan' | "
                                      "'cap x M', got '%s'",
                                      kv.value.c_str()));
        }
      } else {
        return fail(kv.line,
                    format("unknown key '%s' in [variant]", kv.key.c_str()));
      }
    }
    if (v.label.empty()) {
      v.label = v.policy.to_string();
    }
    spec_.variants.push_back(std::move(v));
    return true;
  }

  bool parse_capacity(const Section& s) {
    if (!no_duplicate_keys(s)) return false;
    for (const auto& kv : s.entries) {
      if (kv.key == "nfs") {
        for (const auto& tok : tokens_of(kv.value)) {
          const auto type = nf_type_from_string(tok);
          if (!type) {
            return fail(kv.line, format("unknown NF type '%s'", tok.c_str()));
          }
          spec_.capacity.nfs.push_back(*type);
        }
      } else if (kv.key == "locations") {
        for (const auto& tok : tokens_of(kv.value)) {
          if (tok == "smartnic") {
            spec_.capacity.locations.push_back(Location::kSmartNic);
          } else if (tok == "cpu") {
            spec_.capacity.locations.push_back(Location::kCpu);
          } else {
            return fail(kv.line, format("unknown location '%s' (expected "
                                        "smartnic|cpu)",
                                        tok.c_str()));
          }
        }
      } else if (kv.key == "loss_threshold") {
        if (!need_double(kv, spec_.capacity.loss_threshold)) return false;
      } else if (kv.key == "search_iters") {
        std::uint64_t v = 0;
        if (!parse_u64_strict(kv.value, v) || v < 1 || v > 64) {
          return fail(kv.line, "search_iters must be an integer in [1, 64]");
        }
        spec_.capacity.search_iters = static_cast<int>(v);
      } else if (kv.key == "size_bytes") {
        if (!parse_size_strict(kv.value, spec_.capacity.size_bytes)) {
          return fail(kv.line, format("bad size_bytes '%s'", kv.value.c_str()));
        }
      } else {
        return fail(kv.line,
                    format("unknown key '%s' in [capacity]", kv.key.c_str()));
      }
    }
    return true;
  }

  bool parse_controller(const Section& s) {
    if (!no_duplicate_keys(s)) return false;
    for (const auto& kv : s.entries) {
      if (kv.key == "policy" || kv.key == "scale_in_policy") {
        return fail(kv.line,
                    format("key '%s' moved to the [policy] section (use "
                           "'name = ...' / 'scale_in = ...')",
                           kv.key.c_str()));
      } else if (kv.key == "trigger_utilization") {
        if (!need_double(kv, spec_.controller.trigger_utilization)) return false;
      } else if (kv.key == "scale_in_below") {
        if (!need_double(kv, spec_.controller.scale_in_below)) return false;
      } else if (kv.key == "period_ms") {
        if (!need_double(kv, spec_.controller.period_ms)) return false;
      } else if (kv.key == "first_check_ms") {
        if (!need_double(kv, spec_.controller.first_check_ms)) return false;
      } else if (kv.key == "cooldown_ms") {
        if (!need_double(kv, spec_.controller.cooldown_ms)) return false;
      } else {
        return fail(kv.line,
                    format("unknown key '%s' in [controller]", kv.key.c_str()));
      }
    }
    return true;
  }

  bool parse_chain_decl(const Section& s) {
    if (!no_duplicate_keys(s)) return false;
    ChainDecl decl;
    for (const auto& kv : s.entries) {
      if (kv.key == "name") {
        decl.name = kv.value;
      } else if (kv.key == "spec") {
        decl.spec = kv.value;
      } else if (kv.key == "offered_gbps") {
        if (!need_double(kv, decl.offered_gbps)) return false;
      } else if (kv.key == "server") {
        std::uint64_t v = 0;
        if (!parse_u64_strict(kv.value, v)) {
          return fail(kv.line, format("key 'server': expected an unsigned "
                                      "integer, got '%s'",
                                      kv.value.c_str()));
        }
        decl.server = static_cast<std::int64_t>(v);
        chain_server_line_ = kv.line;
      } else if (kv.key == "policy") {
        if (!parse_policy(kv, decl.policy)) return false;
        chain_policy_line_ = kv.line;
      } else if (kv.key == "arrive_ms") {
        if (!need_double(kv, decl.arrive_ms)) return false;
        chain_churn_line_ = kv.line;
      } else if (kv.key == "depart_ms") {
        if (!need_double(kv, decl.depart_ms)) return false;
        chain_churn_line_ = kv.line;
      } else if (kv.key == "rate") {
        if (!parse_rate_profile(kv, decl.rate)) return false;
        decl.has_rate = true;
        chain_churn_line_ = kv.line;
      } else {
        return fail(kv.line, format("unknown key '%s' in [chain]", kv.key.c_str()));
      }
    }
    if (decl.name.empty()) {
      return fail(s.line, "[chain] requires a 'name'");
    }
    if (decl.spec.empty()) {
      return fail(s.line, "[chain] requires a 'spec'");
    }
    spec_.chains.push_back(std::move(decl));
    return true;
  }

  bool parse_deployment(const Section& s) {
    if (!no_duplicate_keys(s)) return false;
    for (const auto& kv : s.entries) {
      if (kv.key == "burst_multiplier") {
        if (!need_double(kv, spec_.deployment.burst_multiplier)) return false;
      } else if (kv.key == "scale_out_headroom") {
        if (!need_double(kv, spec_.deployment.scale_out_headroom)) return false;
      } else {
        return fail(kv.line,
                    format("unknown key '%s' in [deployment]", kv.key.c_str()));
      }
    }
    return true;
  }

  bool parse_cluster(const Section& s) {
    if (!no_duplicate_keys(s)) return false;
    for (const auto& kv : s.entries) {
      if (kv.key == "servers") {
        std::uint64_t v = 0;
        if (!parse_u64_strict(kv.value, v) || v < 1 || v > 1024) {
          return fail(kv.line, "servers must be an integer in [1, 1024]");
        }
        spec_.cluster.servers = static_cast<std::size_t>(v);
      } else if (kv.key == "rebalance") {
        if (kv.value == "on") {
          spec_.cluster.rebalance = true;
        } else if (kv.value == "off") {
          spec_.cluster.rebalance = false;
        } else {
          return fail(kv.line, format("rebalance: expected on|off, got '%s'",
                                      kv.value.c_str()));
        }
      } else if (kv.key == "inter_server_us") {
        if (!need_double(kv, spec_.cluster.inter_server_us)) return false;
      } else if (kv.key == "trigger_utilization") {
        if (!need_double(kv, spec_.cluster.trigger_utilization)) return false;
      } else if (kv.key == "target_max_load") {
        if (!need_double(kv, spec_.cluster.target_max_load)) return false;
      } else if (kv.key == "period_ms") {
        if (!need_double(kv, spec_.cluster.period_ms)) return false;
      } else if (kv.key == "first_check_ms") {
        if (!need_double(kv, spec_.cluster.first_check_ms)) return false;
      } else if (kv.key == "cooldown_ms") {
        if (!need_double(kv, spec_.cluster.cooldown_ms)) return false;
      } else if (kv.key == "shards") {
        std::uint64_t v = 0;
        if (!parse_u64_strict(kv.value, v) || v < 1 || v > 1024) {
          return fail(kv.line, "shards must be an integer in [1, 1024]");
        }
        spec_.cluster.shards = static_cast<std::size_t>(v);
      } else if (kv.key == "threads") {
        std::uint64_t v = 0;
        if (!parse_u64_strict(kv.value, v) || v < 1 || v > 256) {
          return fail(kv.line, "threads must be an integer in [1, 256]");
        }
        spec_.cluster.threads = static_cast<std::size_t>(v);
        cluster_sharded_line_ = kv.line;
      } else if (kv.key == "cross_rack_us") {
        if (!need_double(kv, spec_.cluster.cross_rack_us)) return false;
        cluster_sharded_line_ = kv.line;
      } else if (kv.key == "orchestrate") {
        if (kv.value == "on") {
          spec_.cluster.orchestrate = true;
        } else if (kv.value == "off") {
          spec_.cluster.orchestrate = false;
        } else {
          return fail(kv.line, format("orchestrate: expected on|off, got '%s'",
                                      kv.value.c_str()));
        }
        cluster_sharded_line_ = kv.line;
      } else {
        return fail(kv.line,
                    format("unknown key '%s' in [cluster]", kv.key.c_str()));
      }
    }
    return true;
  }

  bool parse_failure(const Section& s) {
    if (!no_duplicate_keys(s, {"fail"})) return false;
    for (const auto& kv : s.entries) {
      if (kv.key != "fail") {
        return fail(kv.line,
                    format("unknown key '%s' in [failure]", kv.key.c_str()));
      }
      const auto tok = tokens_of(kv.value);
      FailureEvent event;
      const bool shape_ok = (tok.size() == 2 || tok.size() == 3) &&
                            parse_size_strict(tok[0], event.server) &&
                            parse_tagged_double(tok[1], "at_ms", event.at_ms) &&
                            (tok.size() == 2 ||
                             parse_tagged_double(tok[2], "recover_ms",
                                                 event.recover_ms));
      if (!shape_ok) {
        return fail(kv.line,
                    format("fail: expected 'SERVER at_ms=T [recover_ms=U]', "
                           "got '%s'",
                           kv.value.c_str()));
      }
      if (event.recover_ms >= 0.0 && event.recover_ms <= event.at_ms) {
        return fail(kv.line, "fail: recover_ms must be after at_ms");
      }
      spec_.failures.push_back(event);
    }
    if (spec_.failures.empty()) {
      return fail(s.line, "[failure] requires at least one 'fail' event");
    }
    return true;
  }

  bool parse_link(const Section& s) {
    if (!no_duplicate_keys(s, {"fabric", "fade"})) return false;
    for (const auto& kv : s.entries) {
      const auto tok = tokens_of(kv.value);
      if (kv.key == "fabric") {
        LinkTraceSpec::FabricPoint point;
        if (tok.size() != 2 || !parse_tagged_double(tok[0], "at_ms", point.at_ms) ||
            !parse_tagged_double(tok[1], "delay_us", point.delay_us) ||
            point.delay_us < 0.0) {
          return fail(kv.line,
                      format("fabric: expected 'at_ms=T delay_us=D' with D >= 0, "
                             "got '%s'",
                             kv.value.c_str()));
        }
        spec_.link.fabric.push_back(point);
      } else if (kv.key == "fade") {
        LinkTraceSpec::SlotFade fade;
        if (tok.size() != 3 || !parse_size_strict(tok[0], fade.server) ||
            !parse_tagged_double(tok[1], "at_ms", fade.at_ms) ||
            !parse_tagged_double(tok[2], "speed", fade.speed) ||
            fade.speed <= 0.0 || fade.speed > 100.0) {
          return fail(kv.line,
                      format("fade: expected 'SERVER at_ms=T speed=F' with F in "
                             "(0, 100], got '%s'",
                             kv.value.c_str()));
        }
        spec_.link.fades.push_back(fade);
      } else {
        return fail(kv.line, format("unknown key '%s' in [link]", kv.key.c_str()));
      }
    }
    if (spec_.link.empty()) {
      return fail(s.line,
                  "[link] requires at least one 'fabric' or 'fade' point");
    }
    return true;
  }

  bool check_chain_string(const std::string& chain_spec, const std::string& who) {
    const auto parsed = parse_chain_spec(chain_spec, who);
    if (!parsed) {
      return fail_global(format("%s: invalid chain spec: %s", who.c_str(),
                                parsed.error().what().c_str()));
    }
    return true;
  }

  bool validate() {
    if (!seen_sections_.contains("scenario")) {
      return fail_global("missing required [scenario] section");
    }
    if (spec_.name.empty()) {
      return fail_global("[scenario] requires a 'name'");
    }
    if (!kind_seen_) {
      return fail_global("[scenario] requires a 'kind'");
    }

    const bool is_compare = spec_.kind == ScenarioKind::kCompare;
    const bool is_capacity = spec_.kind == ScenarioKind::kCapacity;
    const bool is_timeline = spec_.kind == ScenarioKind::kTimeline;
    const bool is_deployment = spec_.kind == ScenarioKind::kDeployment;
    // Fleet kinds share the [cluster]/[chain] rack model and run path.
    const bool is_fleet = is_fleet_kind(spec_.kind);
    const bool is_churn = spec_.kind == ScenarioKind::kChurn;
    const bool is_failure = spec_.kind == ScenarioKind::kFailure;
    const bool is_hostile = spec_.kind == ScenarioKind::kHostile;

    if (!spec_.variants.empty() && !is_compare) {
      return fail_global("[variant] sections are only valid for kind = compare");
    }
    if (seen_sections_.contains("capacity") && !is_capacity) {
      return fail_global("[capacity] is only valid for kind = capacity");
    }
    if (seen_sections_.contains("controller") && !is_timeline) {
      return fail_global("[controller] is only valid for kind = timeline");
    }
    if (seen_sections_.contains("policy") && !is_timeline && !is_fleet) {
      return fail(policy_line_,
                  "[policy] is only valid for kind = timeline or cluster-family "
                  "kinds (cluster|churn|failure|hostile); compare variants "
                  "carry their own 'policy'");
    }
    if (!is_timeline &&
        !(spec_.scale_in.name == "none" && spec_.scale_in.params.empty())) {
      // The fleet controller has no calm direction (yet); accepting the key
      // and ignoring it would break the strict-parsing contract.
      return fail(policy_line_,
                  "[policy] 'scale_in' is only used by timeline scenarios");
    }
    if (!spec_.chains.empty() && !is_deployment && !is_fleet) {
      return fail_global(
          "[chain] sections are only valid for kind = deployment or cluster-"
          "family kinds (cluster|churn|failure|hostile)");
    }
    if (seen_sections_.contains("deployment") && !is_deployment) {
      return fail_global("[deployment] is only valid for kind = deployment");
    }
    if (seen_sections_.contains("cluster") && !is_fleet) {
      return fail_global(
          "[cluster] is only valid for kind = cluster|churn|failure|hostile");
    }
    if (seen_sections_.contains("failure") && !is_failure) {
      return fail_global("[failure] is only valid for kind = failure");
    }
    if (seen_sections_.contains("link") && !is_hostile) {
      return fail_global("[link] is only valid for kind = hostile");
    }
    if (rate_seen_ && !is_timeline) {
      return fail(rate_line_,
                  "[traffic] rate profiles are only used by timeline scenarios");
    }
    if (spec_.traffic.sizes.kind == SizeSpec::Kind::kPaperSweep && !is_compare) {
      // Only compare scenarios fan out one DES run per sweep size; elsewhere
      // a sweep would silently degrade to a single size.
      return fail_global("sizes = sweep is only valid for kind = compare");
    }

    if (is_compare || is_timeline) {
      if (spec_.chain.empty()) {
        return fail_global(format("kind = %s requires [scenario] 'chain'",
                                  std::string{to_string(spec_.kind)}.c_str()));
      }
      if (!check_chain_string(spec_.chain, spec_.name)) {
        return false;
      }
    }
    if (is_compare && spec_.variants.empty()) {
      return fail_global("kind = compare requires at least one [variant]");
    }
    if (is_capacity && spec_.capacity.nfs.empty()) {
      return fail_global("kind = capacity requires [capacity] with a non-empty 'nfs'");
    }
    if (is_capacity && spec_.capacity.locations.empty()) {
      spec_.capacity.locations = {Location::kSmartNic, Location::kCpu};
    }
    if (is_timeline && !rate_seen_) {
      return fail_global("kind = timeline requires [traffic] with a 'rate' profile");
    }
    if (is_deployment || is_fleet) {
      if (spec_.chains.empty()) {
        return fail_global(format("kind = %s requires at least one [chain]",
                                  std::string{to_string(spec_.kind)}.c_str()));
      }
      std::unordered_set<std::string> names;
      for (const auto& decl : spec_.chains) {
        if (!names.insert(decl.name).second) {
          return fail_global(format("duplicate [chain] name '%s'", decl.name.c_str()));
        }
        if (!check_chain_string(decl.spec, decl.name)) {
          return false;
        }
        if (decl.server >= 0 && !is_fleet) {
          return fail(chain_server_line_,
                      "[chain] 'server' is only valid for kind = "
                      "cluster|churn|failure|hostile");
        }
        if (!decl.policy.empty() && !is_fleet) {
          return fail(chain_policy_line_,
                      "[chain] 'policy' is only valid for kind = "
                      "cluster|churn|failure|hostile");
        }
        const bool has_churn_keys =
            decl.arrive_ms != 0.0 || decl.depart_ms >= 0.0 || decl.has_rate;
        if (has_churn_keys && !is_churn) {
          return fail(chain_churn_line_,
                      "[chain] 'arrive_ms'/'depart_ms'/'rate' are only valid "
                      "for kind = churn");
        }
        if (is_churn) {
          if (decl.arrive_ms < 0.0 || decl.arrive_ms >= spec_.duration_ms) {
            return fail_global(
                format("chain '%s': arrive_ms must be in [0, duration_ms)",
                       decl.name.c_str()));
          }
          if (decl.depart_ms >= 0.0 && decl.depart_ms <= decl.arrive_ms) {
            return fail_global(
                format("chain '%s': depart_ms must be after arrive_ms",
                       decl.name.c_str()));
          }
        }
        if (is_fleet &&
            decl.server >= static_cast<std::int64_t>(spec_.cluster.servers)) {
          return fail_global(
              format("chain '%s': server %lld out of range (cluster has %zu)",
                     decl.name.c_str(), static_cast<long long>(decl.server),
                     spec_.cluster.servers));
        }
      }
    }
    if (is_fleet && !seen_sections_.contains("cluster")) {
      return fail_global(
          format("kind = %s requires a [cluster] section",
                 std::string{to_string(spec_.kind)}.c_str()));
    }
    if (is_fleet) {
      if (spec_.cluster.shards == 1 && cluster_sharded_line_ != 0) {
        return fail(cluster_sharded_line_,
                    "[cluster] 'threads'/'cross_rack_us'/'orchestrate' require "
                    "shards > 1");
      }
      if (spec_.cluster.servers % spec_.cluster.shards != 0) {
        return fail_global(
            format("[cluster] servers (%zu) must divide evenly into shards "
                   "(%zu)",
                   spec_.cluster.servers, spec_.cluster.shards));
      }
      if (spec_.cluster.shards > 1 && spec_.cluster.cross_rack_us <= 0.0) {
        return fail_global(
            "[cluster] cross_rack_us must be positive (it is the epoch "
            "quantum)");
      }
    }
    if (is_failure) {
      if (spec_.failures.empty()) {
        return fail_global(
            "kind = failure requires [failure] with at least one 'fail'");
      }
      if (!spec_.cluster.rebalance) {
        // Without the fleet controller nobody evacuates a dead slot.
        return fail_global("kind = failure requires [cluster] rebalance = on");
      }
      for (const auto& event : spec_.failures) {
        if (event.server >= spec_.cluster.servers) {
          return fail_global(
              format("[failure] fail: server %zu out of range (cluster has %zu)",
                     event.server, spec_.cluster.servers));
        }
        if (event.at_ms < 0.0 || event.at_ms >= spec_.duration_ms) {
          return fail_global("[failure] fail: at_ms must be in [0, duration_ms)");
        }
      }
    }
    if (is_hostile) {
      if (spec_.link.empty()) {
        return fail_global(
            "kind = hostile requires [link] with at least one 'fabric' or "
            "'fade' point");
      }
      for (const auto& fade : spec_.link.fades) {
        if (fade.server >= spec_.cluster.servers) {
          return fail_global(
              format("[link] fade: server %zu out of range (cluster has %zu)",
                     fade.server, spec_.cluster.servers));
        }
      }
    }
    if (spec_.duration_ms <= 0.0 || spec_.warmup_ms < 0.0 ||
        spec_.warmup_ms >= spec_.duration_ms) {
      return fail_global("need duration_ms > warmup_ms >= 0");
    }
    return true;
  }

  std::string_view text_;
  std::string_view origin_;
  std::vector<Section> sections_;
  std::set<std::string> seen_sections_;
  bool kind_seen_ = false;
  bool rate_seen_ = false;
  int rate_line_ = 0;
  int chain_server_line_ = 0;
  int chain_policy_line_ = 0;
  int chain_churn_line_ = 0;
  int cluster_sharded_line_ = 0;
  int policy_line_ = 0;
  ScenarioSpec spec_;
  std::string error_;
};

std::string sizes_to_text(const SizeSpec& s) {
  switch (s.kind) {
    case SizeSpec::Kind::kFixed:
      return format("fixed %zu", s.fixed);
    case SizeSpec::Kind::kImix:
      return "imix";
    case SizeSpec::Kind::kUniform:
      return format("uniform %zu %zu", s.lo, s.hi);
    case SizeSpec::Kind::kPaperSweep:
      return "sweep";
  }
  return "fixed 512";
}

std::string rate_to_text(const RateSpec& r) {
  switch (r.kind) {
    case RateSpec::Kind::kConstant:
      return "constant " + fmt_double(r.a);
    case RateSpec::Kind::kStep:
      return "step " + fmt_double(r.a) + " " + fmt_double(r.b) +
             " at_ms=" + fmt_double(r.at_ms);
    case RateSpec::Kind::kSinusoid:
      return "sinusoid " + fmt_double(r.a) + " " + fmt_double(r.b) +
             " period_ms=" + fmt_double(r.period_ms);
    case RateSpec::Kind::kFlash:
      return "flash " + fmt_double(r.a) + " " + fmt_double(r.b) +
             " at_ms=" + fmt_double(r.at_ms) + " for_ms=" + fmt_double(r.for_ms);
  }
  return "constant 1";
}

std::string measure_rate_to_text(const MeasureRate& m) {
  switch (m.kind) {
    case MeasureRate::Kind::kGbps:
      return fmt_double(m.value);
    case MeasureRate::Kind::kPlanRate:
      return "plan";
    case MeasureRate::Kind::kCapTimes:
      return "cap x " + fmt_double(m.value);
  }
  return "plan";
}

}  // namespace

std::string_view to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kCompare: return "compare";
    case ScenarioKind::kCapacity: return "capacity";
    case ScenarioKind::kTimeline: return "timeline";
    case ScenarioKind::kDeployment: return "deployment";
    case ScenarioKind::kCluster: return "cluster";
    case ScenarioKind::kChurn: return "churn";
    case ScenarioKind::kFailure: return "failure";
    case ScenarioKind::kHostile: return "hostile";
  }
  return "?";
}

std::string_view to_string(MeasureMode mode) noexcept {
  switch (mode) {
    case MeasureMode::kAnalytic: return "analytic";
    case MeasureMode::kDes: return "des";
    case MeasureMode::kBoth: return "both";
  }
  return "?";
}

Result<ScenarioSpec> ScenarioSpec::parse(std::string_view text,
                                         std::string_view origin) {
  return SpecParser{text, origin}.run();
}

std::string ScenarioSpec::to_text() const {
  std::string out;
  const auto emit = [&out](const char* key, const std::string& value) {
    out += key;
    out += " = ";
    out += value;
    out += "\n";
  };

  out += "[scenario]\n";
  emit("name", name);
  emit("kind", std::string{pam::to_string(kind)});
  if (!description.empty()) {
    emit("description", description);
  }
  for (const auto& note : notes) {
    emit("note", note);
  }
  if (!chain.empty()) {
    emit("chain", chain);
  }
  emit("plan_rate_gbps", fmt_double(plan_rate_gbps));
  emit("measure", std::string{pam::to_string(measure)});
  emit("duration_ms", fmt_double(duration_ms));
  emit("warmup_ms", fmt_double(warmup_ms));
  emit("seed", format("%llu", static_cast<unsigned long long>(seed)));

  out += "\n[traffic]\n";
  emit("arrival", traffic.arrival == ArrivalProcess::kPoisson ? "poisson" : "cbr");
  emit("sizes", sizes_to_text(traffic.sizes));
  if (kind == ScenarioKind::kTimeline) {
    emit("rate", rate_to_text(traffic.rate));
  }

  if (kind == ScenarioKind::kTimeline || is_fleet_kind(kind)) {
    out += "\n[policy]\n";
    emit("name", policy.name);
    for (const auto& [key, value] : policy.params) {
      emit(("param." + key).c_str(), fmt_double(value));
    }
    if (!(scale_in.name == "none" && scale_in.params.empty())) {
      emit("scale_in", scale_in.name);
      for (const auto& [key, value] : scale_in.params) {
        emit(("scale_in.param." + key).c_str(), fmt_double(value));
      }
    }
  }

  for (const auto& v : variants) {
    out += "\n[variant]\n";
    emit("label", v.label);
    emit("policy", v.policy.to_string());
    emit("measure_rate", measure_rate_to_text(v.measure_rate));
  }

  if (kind == ScenarioKind::kCapacity) {
    out += "\n[capacity]\n";
    std::string nfs;
    for (const auto type : capacity.nfs) {
      if (!nfs.empty()) nfs += " ";
      nfs += std::string{pam::to_string(type)};
    }
    emit("nfs", nfs);
    std::string locations;
    for (const auto loc : capacity.locations) {
      if (!locations.empty()) locations += " ";
      locations += loc == Location::kSmartNic ? "smartnic" : "cpu";
    }
    emit("locations", locations);
    emit("loss_threshold", fmt_double(capacity.loss_threshold));
    emit("search_iters", format("%d", capacity.search_iters));
    emit("size_bytes", format("%zu", capacity.size_bytes));
  }

  if (kind == ScenarioKind::kTimeline) {
    out += "\n[controller]\n";
    emit("trigger_utilization", fmt_double(controller.trigger_utilization));
    emit("scale_in_below", fmt_double(controller.scale_in_below));
    emit("period_ms", fmt_double(controller.period_ms));
    emit("first_check_ms", fmt_double(controller.first_check_ms));
    emit("cooldown_ms", fmt_double(controller.cooldown_ms));
  }

  for (const auto& decl : chains) {
    out += "\n[chain]\n";
    emit("name", decl.name);
    emit("spec", decl.spec);
    emit("offered_gbps", fmt_double(decl.offered_gbps));
    if (decl.server >= 0) {
      emit("server", format("%lld", static_cast<long long>(decl.server)));
    }
    if (!decl.policy.empty()) {
      emit("policy", decl.policy.to_string());
    }
    if (decl.arrive_ms != 0.0) {
      emit("arrive_ms", fmt_double(decl.arrive_ms));
    }
    if (decl.depart_ms >= 0.0) {
      emit("depart_ms", fmt_double(decl.depart_ms));
    }
    if (decl.has_rate) {
      emit("rate", rate_to_text(decl.rate));
    }
  }

  if (kind == ScenarioKind::kDeployment) {
    out += "\n[deployment]\n";
    emit("burst_multiplier", fmt_double(deployment.burst_multiplier));
    emit("scale_out_headroom", fmt_double(deployment.scale_out_headroom));
  }

  if (is_fleet_kind(kind)) {
    out += "\n[cluster]\n";
    emit("servers", format("%zu", cluster.servers));
    emit("rebalance", cluster.rebalance ? "on" : "off");
    emit("inter_server_us", fmt_double(cluster.inter_server_us));
    emit("trigger_utilization", fmt_double(cluster.trigger_utilization));
    emit("target_max_load", fmt_double(cluster.target_max_load));
    emit("period_ms", fmt_double(cluster.period_ms));
    emit("first_check_ms", fmt_double(cluster.first_check_ms));
    emit("cooldown_ms", fmt_double(cluster.cooldown_ms));
    if (cluster.shards > 1) {
      // Sharded-mode keys round-trip only when present: a shards=1 spec
      // emits exactly the classic section, so historical texts are stable.
      emit("shards", format("%zu", cluster.shards));
      emit("threads", format("%zu", cluster.threads));
      emit("cross_rack_us", fmt_double(cluster.cross_rack_us));
      emit("orchestrate", cluster.orchestrate ? "on" : "off");
    }
  }

  if (kind == ScenarioKind::kFailure) {
    out += "\n[failure]\n";
    for (const auto& event : failures) {
      std::string value =
          format("%zu", event.server) + " at_ms=" + fmt_double(event.at_ms);
      if (event.recover_ms >= 0.0) {
        value += " recover_ms=" + fmt_double(event.recover_ms);
      }
      emit("fail", value);
    }
  }

  if (kind == ScenarioKind::kHostile) {
    out += "\n[link]\n";
    for (const auto& point : link.fabric) {
      emit("fabric", "at_ms=" + fmt_double(point.at_ms) +
                         " delay_us=" + fmt_double(point.delay_us));
    }
    for (const auto& fade : link.fades) {
      emit("fade", format("%zu", fade.server) + " at_ms=" +
                       fmt_double(fade.at_ms) + " speed=" + fmt_double(fade.speed));
    }
  }

  return out;
}

ScenarioSpec ScenarioSpec::scaled(double factor) const {
  ScenarioSpec out = *this;
  out.plan_rate_gbps *= factor;
  for (auto& v : out.variants) {
    if (v.measure_rate.kind == MeasureRate::Kind::kGbps) {
      v.measure_rate.value *= factor;
    }
  }
  out.traffic.rate.a *= factor;
  if (out.traffic.rate.kind != RateSpec::Kind::kConstant) {
    out.traffic.rate.b *= factor;
  }
  for (auto& decl : out.chains) {
    decl.offered_gbps *= factor;
    if (decl.has_rate) {
      decl.rate.a *= factor;
      if (decl.rate.kind != RateSpec::Kind::kConstant) {
        decl.rate.b *= factor;
      }
    }
  }
  return out;
}

ScenarioSpec ScenarioSpec::with_policy(const PolicyConfig& policy) const {
  ScenarioSpec out = *this;
  out.policy = policy;
  for (auto& decl : out.chains) {
    decl.policy = PolicyConfig{};  // overrides yield to the new default
  }
  for (auto& v : out.variants) {
    v.policy = policy;
    v.label = policy.to_string();
  }
  return out;
}

}  // namespace pam
