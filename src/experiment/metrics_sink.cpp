#include "experiment/metrics_sink.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace pam {

namespace {

void write_latency(JsonWriter& w, const LatencySummary& lat) {
  w.begin_object();
  w.key("mean_us"); w.value(lat.mean_us);
  w.key("p50_us"); w.value(lat.p50_us);
  w.key("p90_us"); w.value(lat.p90_us);
  w.key("p99_us"); w.value(lat.p99_us);
  w.key("max_us"); w.value(lat.max_us);
  w.key("samples"); w.value(lat.samples);
  w.end_object();
}

void write_run(JsonWriter& w, const MeasuredRun& run) {
  w.begin_object();
  w.key("size_bytes"); w.value(run.size_bytes);
  w.key("offered_gbps"); w.value(run.offered_gbps);
  w.key("goodput_gbps"); w.value(run.goodput_gbps);
  w.key("latency"); write_latency(w, run.latency);
  w.key("injected"); w.value(run.injected);
  w.key("delivered"); w.value(run.delivered);
  w.key("dropped");
  w.begin_object();
  w.key("queue_nic"); w.value(run.dropped_queue_nic);
  w.key("queue_cpu"); w.value(run.dropped_queue_cpu);
  w.key("queue_pcie"); w.value(run.dropped_queue_pcie);
  w.key("by_nf"); w.value(run.dropped_by_nf);
  w.key("total"); w.value(run.dropped_total());
  w.end_object();
  w.key("in_flight_at_end"); w.value(run.in_flight_at_end);
  w.key("mean_crossings_per_packet"); w.value(run.mean_crossings_per_packet);
  w.key("smartnic_utilization"); w.value(run.smartnic_utilization);
  w.key("cpu_utilization"); w.value(run.cpu_utilization);
  w.key("pcie_utilization"); w.value(run.pcie_utilization);
  w.end_object();
}

/// One `control_events` array: the typed ControlPlane decision log.
/// `spec` resolves chain indices to declared names (cluster runs).
void write_control_events(JsonWriter& w, const std::vector<ControlEvent>& events,
                          const ScenarioSpec& spec) {
  w.begin_array();
  for (const auto& event : events) {
    w.begin_object();
    w.key("at_ms"); w.value(event.at.ms());
    w.key("kind"); w.value(to_string(event.kind));
    w.key("chain"); w.value(static_cast<std::uint64_t>(event.chain));
    if (event.chain < spec.chains.size()) {
      w.key("chain_name"); w.value(spec.chains[event.chain].name);
    }
    w.key("server"); w.value(static_cast<std::uint64_t>(event.server));
    w.key("moved_nfs");
    w.begin_array();
    for (const auto& nf : event.moved_nfs) {
      w.value(nf);
    }
    w.end_array();
    w.key("smartnic_utilization"); w.value(event.smartnic_utilization);
    w.key("cpu_utilization"); w.value(event.cpu_utilization);
    w.key("detail"); w.value(event.detail);
    w.end_object();
  }
  w.end_array();
}

void write_variant(JsonWriter& w, const VariantResult& vr) {
  w.begin_object();
  w.key("label"); w.value(vr.label);
  w.key("policy"); w.value(vr.policy);
  w.key("plan_rate_gbps"); w.value(vr.plan_rate_gbps);
  w.key("measure_rate_gbps"); w.value(vr.measure_rate_gbps);
  w.key("chain_before"); w.value(vr.chain_before);
  w.key("chain_after"); w.value(vr.chain_after);
  w.key("plan");
  w.begin_object();
  w.key("feasible"); w.value(vr.plan.feasible);
  w.key("migrations"); w.value(vr.plan.steps.size());
  w.key("crossing_delta"); w.value(vr.plan.total_crossing_delta());
  w.key("steps");
  w.begin_array();
  for (const auto& step : vr.plan.steps) {
    w.begin_object();
    w.key("nf"); w.value(step.nf_name);
    w.key("from"); w.value(to_string(step.from));
    w.key("to"); w.value(to_string(step.to));
    w.key("crossing_delta"); w.value(step.crossing_delta);
    w.end_object();
  }
  w.end_array();
  if (!vr.plan.feasible) {
    w.key("infeasibility_reason");
    w.value(vr.plan.infeasibility_reason);
  }
  w.end_object();
  w.key("analytic");
  w.begin_object();
  w.key("max_rate_gbps"); w.value(vr.analytic.max_rate_gbps);
  w.key("smartnic_utilization"); w.value(vr.analytic.smartnic_utilization);
  w.key("cpu_utilization"); w.value(vr.analytic.cpu_utilization);
  w.key("pcie_utilization"); w.value(vr.analytic.pcie_utilization);
  w.key("pcie_crossings"); w.value(static_cast<std::uint64_t>(vr.analytic.pcie_crossings));
  w.end_object();
  w.key("runs");
  w.begin_array();
  for (const auto& run : vr.runs) {
    write_run(w, run);
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_metrics_json(const RunResult& result, std::ostream& out) {
  JsonWriter w{out};
  w.begin_object();
  w.key("scenario"); w.value(result.spec.name);
  w.key("kind"); w.value(to_string(result.spec.kind));
  if (!result.spec.description.empty()) {
    w.key("description"); w.value(result.spec.description);
  }
  w.key("seed"); w.value(result.spec.seed);
  w.key("duration_ms"); w.value(result.spec.duration_ms);
  w.key("warmup_ms"); w.value(result.spec.warmup_ms);

  switch (result.spec.kind) {
    case ScenarioKind::kCompare: {
      w.key("chain"); w.value(result.spec.chain);
      w.key("plan_rate_gbps"); w.value(result.spec.plan_rate_gbps);
      w.key("variants");
      w.begin_array();
      for (const auto& vr : result.variants) {
        write_variant(w, vr);
      }
      w.end_array();
      break;
    }
    case ScenarioKind::kCapacity: {
      w.key("loss_threshold"); w.value(result.spec.capacity.loss_threshold);
      w.key("size_bytes"); w.value(result.spec.capacity.size_bytes);
      w.key("capacities");
      w.begin_array();
      for (const auto& row : result.capacities) {
        w.begin_object();
        w.key("nf"); w.value(row.nf);
        w.key("device"); w.value(row.device);
        w.key("configured_gbps"); w.value(row.configured_gbps);
        w.key("analytic_gbps"); w.value(row.analytic_gbps);
        w.key("realized_gbps"); w.value(row.realized_gbps);
        w.end_object();
      }
      w.end_array();
      break;
    }
    case ScenarioKind::kTimeline: {
      const TimelineResult& tl = *result.timeline;
      w.key("chain"); w.value(result.spec.chain);
      w.key("policy"); w.value(result.spec.policy.to_string());
      if (result.spec.scale_in.name != "none") {
        w.key("scale_in_policy"); w.value(result.spec.scale_in.to_string());
      }
      w.key("chain_before"); w.value(tl.chain_before);
      w.key("chain_after"); w.value(tl.chain_after);
      w.key("migrations_executed"); w.value(tl.migrations_executed);
      w.key("scale_out_requested"); w.value(tl.scale_out_requested);
      w.key("control_events"); write_control_events(w, tl.events, result.spec);
      w.key("metrics"); write_run(w, tl.metrics);
      break;
    }
    case ScenarioKind::kCluster:
    case ScenarioKind::kChurn:
    case ScenarioKind::kFailure:
    case ScenarioKind::kHostile: {
      const ClusterResult& cr = *result.cluster;
      w.key("servers"); w.value(static_cast<std::uint64_t>(cr.servers));
      w.key("rebalance"); w.value(cr.rebalance);
      w.key("policy"); w.value(result.spec.policy.to_string());
      w.key("migrations_executed");
      w.value(static_cast<std::uint64_t>(cr.migrations_executed));
      w.key("scale_out_moves");
      w.value(static_cast<std::uint64_t>(cr.scale_out_moves));
      w.key("evacuations");
      w.value(static_cast<std::uint64_t>(cr.evacuations));
      if (cr.shards > 1) {
        // Sharded datacenter mode only: classic shards=1 output is
        // byte-identical to what it was before sharding existed.  Note the
        // deliberate absence of any thread count — the report must be
        // bit-identical for threads=1 and threads=N.
        w.key("shards"); w.value(static_cast<std::uint64_t>(cr.shards));
        w.key("epochs"); w.value(cr.epochs);
        w.key("cross_rack_moves");
        w.value(static_cast<std::uint64_t>(cr.cross_rack_moves));
        w.key("cross_rack_hops"); w.value(cr.cross_rack_hops);
        w.key("cross_rack_frames"); w.value(cr.cross_rack_frames);
        w.key("shard_totals");
        w.begin_array();
        for (const auto& shard : cr.shard_totals) {
          w.begin_object();
          w.key("shard"); w.value(static_cast<std::uint64_t>(shard.shard));
          w.key("first_server");
          w.value(static_cast<std::uint64_t>(shard.first_server));
          w.key("servers"); w.value(static_cast<std::uint64_t>(shard.servers));
          w.key("events_executed"); w.value(shard.events_executed);
          w.key("injected"); w.value(shard.injected);
          w.key("delivered"); w.value(shard.delivered);
          w.key("dropped"); w.value(shard.dropped);
          w.key("in_flight_at_end"); w.value(shard.in_flight_at_end);
          w.key("frames_out"); w.value(shard.frames_out);
          w.end_object();
        }
        w.end_array();
      }
      if (!result.spec.failures.empty()) {
        w.key("failures");
        w.begin_array();
        for (const auto& ev : result.spec.failures) {
          w.begin_object();
          w.key("server"); w.value(static_cast<std::uint64_t>(ev.server));
          w.key("at_ms"); w.value(ev.at_ms);
          if (ev.recover_ms >= 0.0) {
            w.key("recover_ms"); w.value(ev.recover_ms);
          }
          w.end_object();
        }
        w.end_array();
      }
      if (!result.spec.link.empty()) {
        w.key("link_trace");
        w.begin_object();
        w.key("fabric");
        w.begin_array();
        for (const auto& point : result.spec.link.fabric) {
          w.begin_object();
          w.key("at_ms"); w.value(point.at_ms);
          w.key("delay_us"); w.value(point.delay_us);
          w.end_object();
        }
        w.end_array();
        w.key("fades");
        w.begin_array();
        for (const auto& fade : result.spec.link.fades) {
          w.begin_object();
          w.key("server"); w.value(static_cast<std::uint64_t>(fade.server));
          w.key("at_ms"); w.value(fade.at_ms);
          w.key("speed"); w.value(fade.speed);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.key("inter_server_hops"); w.value(cr.inter_server_hops);
      w.key("conserved"); w.value(cr.conserved);
      w.key("fleet"); write_run(w, cr.fleet);
      w.key("per_server");
      w.begin_array();
      for (const auto& server : cr.per_server) {
        w.begin_object();
        w.key("server"); w.value(static_cast<std::uint64_t>(server.server_id));
        w.key("chains_homed");
        w.value(static_cast<std::uint64_t>(server.chains_homed));
        w.key("nodes_hosted");
        w.value(static_cast<std::uint64_t>(server.nodes_hosted));
        w.key("smartnic_utilization"); w.value(server.smartnic_utilization);
        w.key("cpu_utilization"); w.value(server.cpu_utilization);
        w.key("pcie_utilization"); w.value(server.pcie_utilization);
        w.key("injected"); w.value(server.injected);
        w.key("delivered"); w.value(server.delivered);
        w.key("dropped"); w.value(server.dropped);
        w.end_object();
      }
      w.end_array();
      w.key("chains");
      w.begin_array();
      for (std::size_t i = 0; i < cr.chains.size(); ++i) {
        const auto& chain = cr.chains[i];
        w.begin_object();
        w.key("name"); w.value(chain.name);
        w.key("home_server");
        w.value(static_cast<std::uint64_t>(chain.home_server));
        if (i < result.spec.chains.size() && !result.spec.chains[i].policy.empty()) {
          w.key("policy"); w.value(result.spec.chains[i].policy.to_string());
        }
        if (i < result.spec.chains.size()) {
          const ChainDecl& decl = result.spec.chains[i];
          if (decl.arrive_ms > 0.0) {
            w.key("arrive_ms"); w.value(decl.arrive_ms);
          }
          if (decl.depart_ms >= 0.0) {
            w.key("depart_ms"); w.value(decl.depart_ms);
          }
        }
        w.key("chain_before"); w.value(chain.chain_before);
        w.key("chain_after"); w.value(chain.chain_after);
        w.key("nodes_off_home");
        w.value(static_cast<std::uint64_t>(chain.nodes_off_home));
        if (cr.shards > 1) {
          w.key("nodes_remote");
          w.value(static_cast<std::uint64_t>(chain.nodes_remote));
        }
        w.key("inter_server_hops"); w.value(chain.inter_server_hops);
        w.key("metrics"); write_run(w, chain.metrics);
        w.end_object();
      }
      w.end_array();
      w.key("control_events"); write_control_events(w, cr.events, result.spec);
      break;
    }
    case ScenarioKind::kDeployment: {
      const DeploymentResult& dr = *result.deployment;
      w.key("aggregate");
      w.begin_object();
      w.key("smartnic_before"); w.value(dr.smartnic_before);
      w.key("cpu_before"); w.value(dr.cpu_before);
      w.key("smartnic_after"); w.value(dr.smartnic_after);
      w.key("cpu_after"); w.value(dr.cpu_after);
      w.key("weighted_crossings_before"); w.value(dr.weighted_crossings_before);
      w.key("weighted_crossings_after"); w.value(dr.weighted_crossings_after);
      w.key("feasible"); w.value(dr.feasible);
      if (!dr.feasible) {
        w.key("infeasibility_reason"); w.value(dr.infeasibility_reason);
      }
      w.key("total_crossing_delta"); w.value(dr.total_crossing_delta);
      w.end_object();
      w.key("chains");
      w.begin_array();
      for (const auto& cr : dr.chains) {
        w.begin_object();
        w.key("name"); w.value(cr.name);
        w.key("chain_before"); w.value(cr.chain_before);
        w.key("chain_after"); w.value(cr.chain_after);
        w.key("offered_gbps"); w.value(cr.offered_gbps);
        w.key("burst_gbps"); w.value(cr.burst_gbps);
        w.key("replicas"); w.value(cr.replicas);
        w.key("scale_out_rationale"); w.value(cr.scale_out_rationale);
        w.end_object();
      }
      w.end_array();
      break;
    }
  }
  w.end_object();
}

namespace {

void print_notes(const ScenarioSpec& spec, std::FILE* out) {
  if (spec.notes.empty()) {
    return;
  }
  std::fprintf(out, "\n");
  for (const auto& note : spec.notes) {
    std::fprintf(out, "note: %s\n", note.c_str());
  }
}

void print_plan_trace(const MigrationPlan& plan, std::FILE* out) {
  std::fprintf(out, "  plan: %s\n", plan.describe().c_str());
  for (const auto& line : plan.trace) {
    std::fprintf(out, "    trace | %s\n", line.c_str());
  }
}

void print_compare(const RunResult& result, bool verbose, std::FILE* out) {
  const ScenarioSpec& spec = result.spec;
  std::fprintf(out, "chain: %s\n", spec.chain.c_str());
  std::fprintf(out, "policies plan at %.3g Gbps\n\n", spec.plan_rate_gbps);

  // Placement/model summary, one row per variant.
  std::fprintf(out, "%-22s | %-9s | %5s | %6s | %9s | %-24s\n", "variant",
               "policy", "moves", "xings", "cap Gbps", "analytic util @ measure");
  std::fprintf(out, "-----------------------+-----------+-------+--------+-----------+-------------------------\n");
  for (const auto& vr : result.variants) {
    std::fprintf(out, "%-22s | %-9s | %5zu | %+4d=%u | %9.2f | nic %.2f cpu %.2f @ %.2f\n",
                 vr.label.c_str(), vr.policy.c_str(),
                 vr.plan.steps.size(), vr.plan.total_crossing_delta(),
                 vr.analytic.pcie_crossings, vr.analytic.max_rate_gbps,
                 vr.analytic.smartnic_utilization, vr.analytic.cpu_utilization,
                 vr.measure_rate_gbps);
  }
  if (verbose) {
    std::fprintf(out, "\n");
    for (const auto& vr : result.variants) {
      std::fprintf(out, "%s:\n", vr.label.c_str());
      std::fprintf(out, "  before: %s\n", vr.chain_before.c_str());
      std::fprintf(out, "  after:  %s\n", vr.chain_after.c_str());
      print_plan_trace(vr.plan, out);
    }
  }

  // DES measurements: rows = size points, columns = variants.
  const bool have_runs = !result.variants.empty() && !result.variants.front().runs.empty();
  if (have_runs) {
    std::fprintf(out, "\nDES latency mean/p99 (us) and goodput:\n");
    std::fprintf(out, "%-8s", "size");
    for (const auto& vr : result.variants) {
      std::fprintf(out, " | %-26s", vr.label.c_str());
    }
    std::fprintf(out, "\n");
    const std::size_t rows = result.variants.front().runs.size();
    std::vector<double> mean_sum(result.variants.size(), 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t size = result.variants.front().runs[r].size_bytes;
      if (size != 0) {
        std::fprintf(out, "%5zu B ", size);
      } else {
        std::fprintf(out, "%-8s", "mixed");
      }
      for (std::size_t v = 0; v < result.variants.size(); ++v) {
        const MeasuredRun& run = result.variants[v].runs[r];
        mean_sum[v] += run.latency.mean_us;
        std::fprintf(out, " | %8.1f /%8.1f %7.2fG", run.latency.mean_us,
                     run.latency.p99_us, run.goodput_gbps);
      }
      std::fprintf(out, "\n");
    }
    if (rows > 1) {
      std::fprintf(out, "%-8s", "avg");
      for (std::size_t v = 0; v < result.variants.size(); ++v) {
        std::fprintf(out, " | %8.1f us mean%10s", mean_sum[v] / static_cast<double>(rows), "");
      }
      std::fprintf(out, "\n");
    }
    // Pairwise headlines over every ordered variant pair, so e.g. both
    // "Naive vs Original" and the paper's "PAM decreases latency by 18%
    // compared to the naive solution" are reproduced directly.
    if (result.variants.size() > 1) {
      std::fprintf(out, "\n");
      for (std::size_t v = 1; v < result.variants.size(); ++v) {
        for (std::size_t b = 0; b < v; ++b) {
          const double base_mean = mean_sum[b] / static_cast<double>(rows);
          const double base_cap = result.variants[b].analytic.max_rate_gbps;
          const double mean = mean_sum[v] / static_cast<double>(rows);
          std::fprintf(
              out, "%s vs %s: %+.1f%% mean latency, %+.1f%% analytic capacity\n",
              result.variants[v].label.c_str(), result.variants[b].label.c_str(),
              base_mean > 0.0 ? (mean - base_mean) / base_mean * 100.0 : 0.0,
              base_cap > 0.0
                  ? (result.variants[v].analytic.max_rate_gbps - base_cap) /
                        base_cap * 100.0
                  : 0.0);
        }
      }
    }
  }
}

void print_capacity(const RunResult& result, std::FILE* out) {
  std::fprintf(out, "(configured = capacity table theta; analytic = model max rate;\n");
  std::fprintf(out, " realized = DES binary search at < %.2f%% loss, %zuB frames)\n\n",
               result.spec.capacity.loss_threshold * 100.0,
               result.spec.capacity.size_bytes);
  std::fprintf(out, "%-14s %-10s | %12s %12s %12s\n", "vNF", "device",
               "theta (cfg)", "analytic", "realized");
  std::fprintf(out, "---------------------------------------------------------------\n");
  for (const auto& row : result.capacities) {
    std::fprintf(out, "%-14s %-10s | %9.2f G  %9.2f G  %9.2f G\n", row.nf.c_str(),
                 row.device.c_str(), row.configured_gbps, row.analytic_gbps,
                 row.realized_gbps);
  }
}

/// "  <time> ms | [kind       ] detail" — one line per typed decision.
void print_control_event(const ControlEvent& event, const char* chain_name,
                         std::FILE* out) {
  std::fprintf(out, "  %8.2f ms | %-17s | %s%s%s%s\n", event.at.ms(),
               std::string{to_string(event.kind)}.c_str(),
               chain_name != nullptr ? "[" : "",
               chain_name != nullptr ? chain_name : "",
               chain_name != nullptr ? "] " : "", event.detail.c_str());
}

void print_timeline(const RunResult& result, std::FILE* out) {
  const TimelineResult& tl = *result.timeline;
  std::fprintf(out, "chain before: %s\n", tl.chain_before.c_str());
  std::fprintf(out, "chain after:  %s\n", tl.chain_after.c_str());
  std::fprintf(out, "policy: %s%s%s\n\n", result.spec.policy.to_string().c_str(),
               result.spec.scale_in.name != "none" ? ", scale-in: " : "",
               result.spec.scale_in.name != "none"
                   ? result.spec.scale_in.to_string().c_str()
                   : "");
  std::fprintf(out, "controller timeline:\n");
  for (const auto& event : tl.events) {
    print_control_event(event, nullptr, out);
  }
  if (tl.events.empty()) {
    std::fprintf(out, "  (no controller events)\n");
  }
  std::fprintf(out, "\nmigrations executed: %zu%s\n", tl.migrations_executed,
               tl.scale_out_requested ? "  (scale-out requested)" : "");
  const MeasuredRun& m = tl.metrics;
  std::fprintf(out,
               "run metrics: goodput %.2f Gbps, latency mean %.1f us p99 %.1f us, "
               "delivered %llu, dropped %llu\n",
               m.goodput_gbps, m.latency.mean_us, m.latency.p99_us,
               static_cast<unsigned long long>(m.delivered),
               static_cast<unsigned long long>(m.dropped_total()));
}

void print_deployment(const RunResult& result, bool verbose, std::FILE* out) {
  const DeploymentResult& dr = *result.deployment;
  std::fprintf(out, "aggregate utilisation: nic %.2f cpu %.2f  ->  nic %.2f cpu %.2f\n",
               dr.smartnic_before, dr.cpu_before, dr.smartnic_after, dr.cpu_after);
  std::fprintf(out, "weighted crossings:    %.2f -> %.2f Gbps-crossings (delta %+d)\n",
               dr.weighted_crossings_before, dr.weighted_crossings_after,
               dr.total_crossing_delta);
  if (!dr.feasible) {
    std::fprintf(out, "multi-chain PAM infeasible: %s\n",
                 dr.infeasibility_reason.c_str());
  }
  if (verbose) {
    std::fprintf(out, "\nmulti-chain PAM decision:\n");
    for (const auto& line : dr.trace) {
      std::fprintf(out, "  %s\n", line.c_str());
    }
  }
  std::fprintf(out, "\nscale-out sizing at %.2gx load:\n",
               result.spec.deployment.burst_multiplier);
  for (const auto& cr : dr.chains) {
    std::fprintf(out, "  %-10s %5.2f -> %5.2f Gbps: %zu replica(s): %s\n",
                 cr.name.c_str(), cr.offered_gbps, cr.burst_gbps, cr.replicas,
                 cr.scale_out_rationale.c_str());
    if (verbose) {
      std::fprintf(out, "    before: %s\n    after:  %s\n", cr.chain_before.c_str(),
                   cr.chain_after.c_str());
    }
  }
}

void print_cluster(const RunResult& result, bool verbose, std::FILE* out) {
  const ClusterResult& cr = *result.cluster;
  std::fprintf(out,
               "%zu server(s), %zu chain(s), rebalance %s (policy %s) | "
               "migrations %zu, cross-server moves %zu, evacuations %zu\n\n",
               cr.servers, cr.chains.size(), cr.rebalance ? "on" : "off",
               result.spec.policy.to_string().c_str(), cr.migrations_executed,
               cr.scale_out_moves, cr.evacuations);
  if (cr.shards > 1) {
    std::fprintf(out,
                 "sharded: %zu rack(s) x %zu server(s), %llu epoch(s) | "
                 "cross-rack moves %zu, fabric frames %llu, fabric packets "
                 "%llu\n",
                 cr.shards, cr.servers / cr.shards,
                 static_cast<unsigned long long>(cr.epochs),
                 cr.cross_rack_moves,
                 static_cast<unsigned long long>(cr.cross_rack_frames),
                 static_cast<unsigned long long>(cr.cross_rack_hops));
  }
  for (const auto& ev : result.spec.failures) {
    if (ev.recover_ms >= 0.0) {
      std::fprintf(out, "failure: server %zu dies at %.1f ms, recovers at %.1f ms\n",
                   ev.server, ev.at_ms, ev.recover_ms);
    } else {
      std::fprintf(out, "failure: server %zu dies at %.1f ms (no recovery)\n",
                   ev.server, ev.at_ms);
    }
  }
  for (const auto& point : result.spec.link.fabric) {
    std::fprintf(out, "link: fabric delay -> %.1f us at %.1f ms\n", point.delay_us,
                 point.at_ms);
  }
  for (const auto& fade : result.spec.link.fades) {
    std::fprintf(out, "link: server %zu fades to %.2fx speed at %.1f ms\n",
                 fade.server, fade.speed, fade.at_ms);
  }
  if (!result.spec.failures.empty() || !result.spec.link.empty()) {
    std::fprintf(out, "\n");
  }

  std::fprintf(out, "%-7s | %6s | %5s | %-21s | %9s %9s %9s\n", "server",
               "chains", "nodes", "util nic/cpu/pcie", "injected", "delivered",
               "dropped");
  std::fprintf(out, "--------+--------+-------+-----------------------+-------------------------------\n");
  for (const auto& server : cr.per_server) {
    std::fprintf(out, "%7zu | %6zu | %5zu | %5.2f / %5.2f / %5.2f | %9llu %9llu %9llu\n",
                 server.server_id, server.chains_homed, server.nodes_hosted,
                 server.smartnic_utilization, server.cpu_utilization,
                 server.pcie_utilization,
                 static_cast<unsigned long long>(server.injected),
                 static_cast<unsigned long long>(server.delivered),
                 static_cast<unsigned long long>(server.dropped));
  }

  std::fprintf(out, "\n%-12s | %4s | %8s | %8s | %8s /%8s | %s\n", "chain", "home",
               "offered", "goodput", "lat mean", "p99 (us)", "placement");
  std::fprintf(out, "-------------+------+----------+----------+--------------------+-----------\n");
  for (const auto& chain : cr.chains) {
    std::fprintf(out, "%-12s | %4zu | %6.2f G | %6.2f G | %8.1f /%8.1f | %s%s\n",
                 chain.name.c_str(), chain.home_server,
                 chain.metrics.offered_gbps, chain.metrics.goodput_gbps,
                 chain.metrics.latency.mean_us, chain.metrics.latency.p99_us,
                 chain.chain_after.c_str(),
                 chain.nodes_off_home > 0
                     ? format(" (%zu NF(s) off-home)", chain.nodes_off_home).c_str()
                     : "");
  }

  const MeasuredRun& fleet = cr.fleet;
  std::fprintf(out,
               "\nfleet: offered %.2f Gbps -> goodput %.2f Gbps | latency mean "
               "%.1f us p99 %.1f us | delivered %llu, dropped %llu, "
               "inter-server hops %llu%s\n",
               fleet.offered_gbps, fleet.goodput_gbps, fleet.latency.mean_us,
               fleet.latency.p99_us,
               static_cast<unsigned long long>(fleet.delivered),
               static_cast<unsigned long long>(fleet.dropped_total()),
               static_cast<unsigned long long>(cr.inter_server_hops),
               cr.conserved ? "" : "  [NOT CONSERVED]");

  if (verbose || !cr.events.empty()) {
    std::fprintf(out, "\nfleet controller timeline:\n");
    for (const auto& event : cr.events) {
      const char* chain_name = event.chain < result.spec.chains.size()
                                   ? result.spec.chains[event.chain].name.c_str()
                                   : "?";
      print_control_event(event, chain_name, out);
    }
    if (cr.events.empty()) {
      std::fprintf(out, "  (no fleet controller events)\n");
    }
  }
}

}  // namespace

void print_report(const RunResult& result, bool verbose, std::FILE* out) {
  if (out == nullptr) {
    out = stdout;
  }
  const ScenarioSpec& spec = result.spec;
  std::fprintf(out, "=== %s [%s] ===\n", spec.name.c_str(),
               std::string{to_string(spec.kind)}.c_str());
  if (!spec.description.empty()) {
    std::fprintf(out, "%s\n", spec.description.c_str());
  }
  std::fprintf(out, "\n");

  switch (spec.kind) {
    case ScenarioKind::kCompare:
      print_compare(result, verbose, out);
      break;
    case ScenarioKind::kCapacity:
      print_capacity(result, out);
      break;
    case ScenarioKind::kTimeline:
      print_timeline(result, out);
      break;
    case ScenarioKind::kDeployment:
      print_deployment(result, verbose, out);
      break;
    case ScenarioKind::kCluster:
    case ScenarioKind::kChurn:
    case ScenarioKind::kFailure:
    case ScenarioKind::kHostile:
      print_cluster(result, verbose, out);
      break;
  }
  print_notes(spec, out);
}

}  // namespace pam
