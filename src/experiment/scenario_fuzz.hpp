// Scenario fuzzing: generate random *valid* scenarios, execute them, and
// audit every run with the invariant checker (invariants.hpp).
//
// The generator spans every scenario kind — compare, capacity, timeline,
// deployment, and the fleet kinds (cluster, churn, failure, hostile) — and
// emits only specs that satisfy the parser's validation rules, so a failure
// is always a real property violation (round-trip break, runner error, or a
// broken invariant), never a rejected input.
//
// Determinism: one `pam::Rng` lineage derived from `FuzzOptions::seed` via
// `Rng::derive` drives everything.  Two campaigns with the same seed, count
// and quick flag produce byte-identical scenario text and an identical
// campaign digest — CI runs the campaign twice and diffs the digests.
//
// On the first failing case the campaign greedily shrinks the spec (dropping
// chains, variants, failure events, link points, churn decorations) while
// the failure reproduces, dumps the minimal `.scn` to `dump_dir`, and stops.
//
//   pam_exp fuzz --seed 42 --count 25 --quick
//
// See docs/FUZZING.md.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "experiment/scenario_spec.hpp"

namespace pam {

/// Campaign parameters (the `pam_exp fuzz` flags).
struct FuzzOptions {
  std::uint64_t seed = 1;    ///< campaign seed; everything derives from it
  std::size_t count = 50;    ///< cases to generate and execute
  bool quick = false;        ///< short DES horizons (CI smoke)
  std::string dump_dir = "."; ///< where a shrunk failing .scn is written
  bool verbose = false;      ///< one line per case instead of a summary
};

/// What a campaign did.
struct FuzzOutcome {
  std::size_t executed = 0;  ///< cases run (including a failing one)
  std::size_t failures = 0;  ///< 0 or 1 — the campaign stops at the first
  std::uint64_t digest = 0;  ///< FNV-1a over all scenario text + metrics JSON
  std::string first_failure_path;    ///< dumped minimal .scn ("" if none)
  std::string first_failure_detail;  ///< what broke ("" if none)
};

/// The deterministic generator: the spec for case `index` of a campaign.
/// `rng` must be positioned by the campaign (one derived stream per case).
/// Every returned spec parses back from its own to_text() rendering.
[[nodiscard]] ScenarioSpec generate_random_spec(Rng& rng, std::size_t index,
                                                bool quick);

/// Runs a campaign: generate -> round-trip -> execute -> check invariants,
/// case by case.  Progress goes to `out` (nullptr = stdout).  Returns an
/// error only for environment problems (e.g. dump_dir not writable); a
/// property failure is reported in the outcome, not as an error.
[[nodiscard]] Result<FuzzOutcome> run_fuzz_campaign(const FuzzOptions& options,
                                                    std::FILE* out = nullptr);

}  // namespace pam
