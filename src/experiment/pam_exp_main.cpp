// pam_exp — the experiment-runner CLI.
//
//   pam_exp list                          # bundled scenario presets
//   pam_exp policies                      # registered migration policies
//   pam_exp run <scenario>... [options]   # execute scenarios
//   pam_exp sweep <scenario> --factors LO:HI:STEPS [options]
//   pam_exp bench [--json[=FILE]] [--quick]  # in-process perf quick tier
//   pam_exp fuzz [--seed N] [--count N] [--quick] [--dump-dir DIR]
//                                         # invariant-checking scenario fuzzer
//
// <scenario> is a bundled preset name (e.g. fig2-latency) or a path to a
// .scn file.  Options:
//   --json[=FILE]   emit JSON metrics (to stdout when FILE is omitted or -);
//                   multiple scenarios / sweep points produce a JSON array
//   --quiet         suppress the human-readable report
//   --verbose       include policy decision traces in the report
//   --dir DIR       scenario directory (default: $PAM_SCENARIOS_DIR,
//                   ./scenarios, or the source-tree scenarios/)
//   --policy NAME[:key=val,...]
//                   (run/sweep) re-point the scenario at a registered
//                   policy: replaces the [policy] default, clears per-chain
//                   overrides, and re-points every compare variant — same
//                   registry path as the .scn surface, no side channel
//   --quick         (bench) shrink iteration counts / simulated windows
//                   (equivalent to PAM_BENCH_QUICK=1);
//                   (fuzz) short DES horizons for CI smoke runs
//   --check-invariants
//                   (run) audit every executed scenario with the invariant
//                   checker (experiment/invariants.hpp); violations fail
//                   the run with one diagnostic line each
//   --threads N     (run) worker threads for sharded scenarios ([cluster]
//                   shards > 1); overrides the spec's threads= key.  Never
//                   changes results — only wall-clock time.
//   --seed N / --count N / --dump-dir DIR
//                   (fuzz) campaign seed, number of generated cases, and
//                   where a shrunk failing .scn reproducer is written
//
// `bench` times the three gated trajectory families in-process (control-loop
// decision latency, packet-pool recycle, shared-kernel events/s) and emits
// one pam-bench/v1 section (docs/BENCHMARKS.md); scripts/run_benches.sh
// merges it into BENCH_*.json alongside the bench/ binaries.
//
// Exit status: 0 on success, 1 on any configuration or I/O error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "benchreport/bench_reporter.hpp"
#include "chain/chain_analyzer.hpp"
#include "chain/chain_builder.hpp"
#include "common/strings.hpp"
#include "control/policy_registry.hpp"
#include "core/pam_policy.hpp"
#include "experiment/invariants.hpp"
#include "experiment/metrics_sink.hpp"
#include "experiment/scenario_fuzz.hpp"
#include "experiment/scenario_library.hpp"
#include "experiment/scenario_runner.hpp"
#include "packet/packet_pool.hpp"
#include "sim/cluster_simulator.hpp"

namespace {

using namespace pam;

int usage(std::FILE* out) {
  std::fprintf(out,
               "usage: pam_exp list [--dir DIR]\n"
               "       pam_exp policies\n"
               "       pam_exp run <scenario>... [--json[=FILE]] [--quiet] "
               "[--verbose] [--policy NAME[:key=val,...]] [--threads N] "
               "[--dir DIR]\n"
               "       pam_exp sweep <scenario> --factors LO:HI:STEPS "
               "[--json[=FILE]] [--quiet] [--policy NAME[:key=val,...]] "
               "[--dir DIR]\n"
               "       pam_exp bench [--json[=FILE]] [--quick]\n"
               "       pam_exp fuzz [--seed N] [--count N] [--quick] "
               "[--dump-dir DIR] [--verbose]\n"
               "\n"
               "<scenario> is a bundled preset name (see 'pam_exp list') or a "
               "path to a .scn file.\n"
               "--policy re-runs any preset under a registered policy (see "
               "'pam_exp policies').\n");
  return out == stdout ? 0 : 1;
}

struct Options {
  std::vector<std::string> scenarios;
  bool json = false;
  std::string json_file;  ///< empty or "-" == stdout
  bool quiet = false;
  bool verbose = false;
  std::string dir;
  std::string factors;
  std::string policy;  ///< --policy NAME[:key=val,...]; empty = none
  bool quick = false;  ///< --quick (bench/fuzz): shrink the work
  bool check_invariants = false;  ///< --check-invariants (run)
  std::size_t threads = 0;        ///< --threads (run); 0 = use the spec's
  std::uint64_t seed = 1;         ///< --seed (fuzz)
  std::size_t count = 50;         ///< --count (fuzz)
  std::string dump_dir = ".";     ///< --dump-dir (fuzz)
};

bool parse_args(int argc, char** argv, int first, Options& out) {
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      out.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      out.json = true;
      out.json_file = std::string{arg.substr(7)};
    } else if (arg == "--quiet") {
      out.quiet = true;
    } else if (arg == "--quick") {
      out.quick = true;
    } else if (arg == "--verbose") {
      out.verbose = true;
    } else if (arg == "--dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --dir needs a value\n");
        return false;
      }
      out.dir = argv[++i];
    } else if (arg == "--factors") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --factors needs LO:HI:STEPS\n");
        return false;
      }
      out.factors = argv[++i];
    } else if (arg == "--policy") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --policy needs NAME[:key=val,...]\n");
        return false;
      }
      out.policy = argv[++i];
    } else if (arg == "--check-invariants") {
      out.check_invariants = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threads needs a value\n");
        return false;
      }
      out.threads = std::strtoull(argv[++i], nullptr, 10);
      if (out.threads == 0) {
        std::fprintf(stderr, "error: --threads must be positive\n");
        return false;
      }
    } else if (arg == "--seed") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --seed needs a value\n");
        return false;
      }
      out.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--count") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --count needs a value\n");
        return false;
      }
      out.count = std::strtoull(argv[++i], nullptr, 10);
      if (out.count == 0) {
        std::fprintf(stderr, "error: --count must be positive\n");
        return false;
      }
    } else if (arg == "--dump-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --dump-dir needs a value\n");
        return false;
      }
      out.dump_dir = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[i]);
      return false;
    } else {
      out.scenarios.emplace_back(arg);
    }
  }
  if (!out.dir.empty()) {
    // The library reads the environment; propagate --dir through it so
    // bundled-name resolution follows the flag.
    setenv("PAM_SCENARIOS_DIR", out.dir.c_str(), 1);
  }
  return true;
}

Result<ScenarioSpec> load(const std::string& ref) {
  // A path if it points at a readable file or names one explicitly;
  // otherwise a bundled preset name.
  if (ref.find('/') != std::string::npos ||
      (ref.size() > 4 && ref.compare(ref.size() - 4, 4, ".scn") == 0)) {
    return load_scenario_file(ref);
  }
  return load_bundled_scenario(ref);
}

/// Runs every spec; prints reports unless quiet; emits a JSON object (one
/// result) or array (several) when requested.
int run_specs(const std::vector<ScenarioSpec>& specs, const Options& opt) {
  const ScenarioRunner runner;
  std::vector<RunResult> results;
  for (const auto& spec : specs) {
    auto result = runner.run(spec, opt.threads);
    if (!result) {
      std::fprintf(stderr, "error: %s\n", result.error().what().c_str());
      return 1;
    }
    if (!opt.quiet) {
      print_report(result.value(), opt.verbose);
      std::printf("\n");
    }
    if (opt.check_invariants) {
      const InvariantReport report = check_invariants(result.value());
      if (!report.ok()) {
        std::fprintf(stderr, "error: scenario '%s' violates invariants:\n%s",
                     result.value().spec.name.c_str(),
                     report.describe().c_str());
        return 1;
      }
      if (!opt.quiet) {
        std::printf("invariants: all hold for '%s'\n\n",
                    result.value().spec.name.c_str());
      }
    }
    results.push_back(std::move(result).value());
  }

  if (opt.json) {
    std::ofstream file;
    const bool to_stdout = opt.json_file.empty() || opt.json_file == "-";
    if (!to_stdout) {
      file.open(opt.json_file);
      if (!file) {
        std::fprintf(stderr, "error: cannot write '%s'\n", opt.json_file.c_str());
        return 1;
      }
    }
    std::ostream& out = to_stdout ? std::cout : file;
    if (results.size() == 1) {
      write_metrics_json(results.front(), out);
    } else {
      out << "[\n";
      for (std::size_t i = 0; i < results.size(); ++i) {
        write_metrics_json(results[i], out);
        if (i + 1 < results.size()) {
          out << ",\n";
        }
      }
      out << "]\n";
    }
    if (!to_stdout && !opt.quiet) {
      std::printf("wrote JSON metrics to %s\n", opt.json_file.c_str());
    }
  }
  return 0;
}

int cmd_list(const Options& /*opt*/) {
  const std::string dir = default_scenario_dir();
  auto names = list_scenarios(dir);
  if (!names) {
    std::fprintf(stderr, "error: %s\n", names.error().what().c_str());
    return 1;
  }
  std::printf("scenarios in %s:\n", dir.c_str());
  std::size_t width = 0;
  for (const auto& name : names.value()) {
    width = std::max(width, name.size());
  }
  for (const auto& name : names.value()) {
    auto spec = load_bundled_scenario(name);
    if (spec) {
      // Kind next to the name so e.g. the cluster presets are discoverable
      // without opening each file.
      std::printf("  %-*s [%-10s] %s\n", static_cast<int>(width), name.c_str(),
                  std::string{to_string(spec.value().kind)}.c_str(),
                  spec.value().description.c_str());
    } else {
      std::printf("  %-*s (unparseable: %s)\n", static_cast<int>(width),
                  name.c_str(), spec.error().what().c_str());
    }
  }
  return 0;
}

int cmd_policies(const Options& /*opt*/) {
  const PolicyRegistry& registry = PolicyRegistry::instance();
  std::printf("registered migration policies:\n");
  for (const auto& name : registry.names()) {
    const PolicyInfo* info = registry.find(name);
    std::printf("  %-10s %s\n", name.c_str(), info->summary.c_str());
    for (const auto& param : info->params) {
      std::printf("             %s = %g in [%g, %g]  (%s)\n", param.key.c_str(),
                  param.default_value, param.min_value, param.max_value,
                  param.description.c_str());
    }
  }
  std::printf(
      "\nselect with [policy]/[variant]/[chain] keys in a .scn file or\n"
      "'pam_exp run <scenario> --policy NAME[:key=val,...]'.\n");
  return 0;
}

/// Resolves --policy through the registry up front so a typo fails before
/// any scenario runs, listing what is registered.  Returns false on error;
/// leaves `out` empty when the flag was not given.
bool resolve_policy_override(const Options& opt, std::optional<PolicyConfig>& out) {
  if (opt.policy.empty()) {
    return true;
  }
  auto parsed = PolicyConfig::parse(opt.policy);
  if (!parsed) {
    std::fprintf(stderr, "error: --policy: %s\n", parsed.error().what().c_str());
    return false;
  }
  auto valid = PolicyRegistry::instance().validate(parsed.value());
  if (!valid) {
    std::fprintf(stderr, "error: --policy: %s\n", valid.error().what().c_str());
    return false;
  }
  out = std::move(parsed).value();
  return true;
}

/// Capacity searches take no migration policy and deployment runs use the
/// multi-chain planner, so a --policy override would silently change
/// nothing there — reject instead.
bool policy_override_applies(const ScenarioSpec& spec,
                             const std::optional<PolicyConfig>& override_policy) {
  if (!override_policy) {
    return true;
  }
  if (spec.kind == ScenarioKind::kCapacity ||
      spec.kind == ScenarioKind::kDeployment) {
    std::fprintf(stderr, "error: --policy does not apply to %s scenarios ('%s')\n",
                 std::string{to_string(spec.kind)}.c_str(), spec.name.c_str());
    return false;
  }
  return true;
}

int cmd_run(const Options& opt) {
  if (opt.scenarios.empty()) {
    std::fprintf(stderr, "error: 'run' needs at least one scenario\n");
    return usage(stderr);
  }
  std::optional<PolicyConfig> override_policy;
  if (!resolve_policy_override(opt, override_policy)) {
    return 1;
  }
  std::vector<ScenarioSpec> specs;
  for (const auto& ref : opt.scenarios) {
    auto spec = load(ref);
    if (!spec) {
      std::fprintf(stderr, "error: %s\n", spec.error().what().c_str());
      return 1;
    }
    if (!policy_override_applies(spec.value(), override_policy)) {
      return 1;
    }
    specs.push_back(override_policy ? spec.value().with_policy(*override_policy)
                                    : std::move(spec).value());
  }
  return run_specs(specs, opt);
}

int cmd_sweep(const Options& opt) {
  if (opt.scenarios.size() != 1) {
    std::fprintf(stderr, "error: 'sweep' takes exactly one scenario\n");
    return usage(stderr);
  }
  double lo = 0.0;
  double hi = 0.0;
  int steps = 0;
  if (opt.factors.empty() ||
      std::sscanf(opt.factors.c_str(), "%lf:%lf:%d", &lo, &hi, &steps) != 3 ||
      steps < 2 || lo <= 0.0 || hi < lo) {
    std::fprintf(stderr,
                 "error: sweep needs --factors LO:HI:STEPS with 0 < LO <= HI "
                 "and STEPS >= 2 (e.g. 0.5:2.0:7)\n");
    return 1;
  }
  std::optional<PolicyConfig> override_policy;
  if (!resolve_policy_override(opt, override_policy)) {
    return 1;
  }
  auto spec = load(opt.scenarios.front());
  if (!spec) {
    std::fprintf(stderr, "error: %s\n", spec.error().what().c_str());
    return 1;
  }
  if (!policy_override_applies(spec.value(), override_policy)) {
    return 1;
  }
  if (override_policy) {
    spec = spec.value().with_policy(*override_policy);
  }
  if (spec.value().kind == ScenarioKind::kCapacity) {
    // Capacity searches derive their rates from the capacity table, which
    // scaled() cannot touch — a sweep would emit N identical results.
    std::fprintf(stderr,
                 "error: 'sweep' does not apply to capacity scenarios "
                 "(their rates come from the capacity table, not the spec)\n");
    return 1;
  }
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < steps; ++i) {
    const double factor =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps - 1);
    ScenarioSpec scaled = spec.value().scaled(factor);
    scaled.name = format("%s@x%.3g", spec.value().name.c_str(), factor);
    specs.push_back(std::move(scaled));
  }
  return run_specs(specs, opt);
}

/// Optimizer sink for the in-process bench loops.
volatile std::uint64_t g_bench_sink = 0;

/// The in-process perf quick tier: one case per gated trajectory family so
/// a single `pam_exp bench --json` emission exercises the whole
/// measurement surface without building bench/.  Records land under bench
/// name "pam_exp_bench" (see docs/BENCHMARKS.md).
int cmd_bench(const Options& opt) {
  if (opt.quick) {
    setenv("PAM_BENCH_QUICK", "1", 1);
  }
  const bool quick = bench_quick_mode();
  BenchReporter reporter{"pam_exp_bench"};
  std::printf("=== pam_exp bench: in-process perf quick tier%s ===\n\n",
              quick ? " (quick)" : "");

  // Control-loop decision latency: one full PAM plan per periodic load
  // query on the paper's Figure-1 chain.
  {
    Server server = Server::paper_testbed();
    const ChainAnalyzer analyzer{server};
    const PamPolicy policy;
    const ServiceChain chain = paper_figure1_chain();
    const std::size_t iters = quick ? 2000 : 10000;
    const TimingStats stats =
        time_runs(BenchTiming{1, quick ? 3 : 5}, [&] {
          for (std::size_t i = 0; i < iters; ++i) {
            g_bench_sink = g_bench_sink +
                           policy.plan(chain, analyzer, paper_overload_rate())
                               .steps.size();
          }
        });
    const double ns = stats.best_ns / static_cast<double>(iters);
    std::printf("pam_plan (fig1 chain):    %10.1f ns/plan\n", ns);
    reporter.add_case("pam_plan")
        .param("chain", "fig1")
        .metric("ns_per_plan", MetricKind::kLatency, ns, "ns",
                static_cast<std::uint64_t>(iters) * stats.repeats);
  }

  // Packet-pool recycle: the per-packet allocation cost on the datapath.
  {
    PacketPool pool{1};
    const std::size_t iters = quick ? 250'000 : 1'000'000;
    constexpr std::size_t kFrame = 1500;
    { auto prime = pool.acquire(kFrame); }
    const TimingStats stats = time_runs(BenchTiming{1, quick ? 3 : 5}, [&] {
      for (std::size_t i = 0; i < iters; ++i) {
        auto handle = pool.acquire(kFrame);
        g_bench_sink = g_bench_sink + (handle ? 1 : 0);
      }
    });
    const double ns = stats.best_ns / static_cast<double>(iters);
    std::printf("pool recycle @%zuB:      %10.1f ns/acquire\n", kFrame, ns);
    reporter.add_case("pool_recycle")
        .param("frame_bytes", std::uint64_t{kFrame})
        .metric("ns_per_acquire", MetricKind::kLatency, ns, "ns",
                static_cast<std::uint64_t>(iters) * stats.repeats);
  }

  // Shared-kernel DES throughput: a small rack on one event queue.
  {
    constexpr std::size_t kServers = 4;
    ClusterSimulator cluster{kServers};
    for (std::size_t s = 0; s < kServers; ++s) {
      TrafficSourceConfig cfg;
      cfg.rate = RateProfile::constant(Gbps{1.2});
      cfg.sizes = PacketSizeDistribution::fixed(512);
      cfg.seed = 42 + s;
      cluster.add_chain(ChainBuilder{format("tenant-%zu", s)}
                            .add(NfType::kFirewall, format("fw%zu", s),
                                 Location::kSmartNic)
                            .add(NfType::kLoadBalancer, format("lb%zu", s),
                                 Location::kCpu)
                            .build(),
                        std::move(cfg), s);
    }
    // Single-shot (warmup 0, repeat 1): cluster.run() drains the fleet, so
    // a second repetition would time an empty queue.  time_runs keeps the
    // wall-clock read inside benchreport (rule D002).
    const TimingStats wall = time_runs(BenchTiming{0, 1}, [&] {
      (void)cluster.run(SimTime::milliseconds(quick ? 5 : 15),
                        SimTime::milliseconds(quick ? 1 : 3));
    });
    const double wall_ms = wall.best_ns / 1e6;
    const double events = static_cast<double>(cluster.kernel().queue().executed());
    const double events_per_s = wall_ms > 0.0 ? events / wall_ms * 1e3 : 0.0;
    std::printf("cluster kernel (4 srv):   %10.2f M events/s\n",
                events_per_s / 1e6);
    reporter.add_case("cluster_events")
        .param("servers", std::uint64_t{kServers})
        .metric("events_per_s", MetricKind::kThroughput, events_per_s, "/s");
  }

  if (opt.json) {
    const bool to_stdout = opt.json_file.empty() || opt.json_file == "-";
    if (to_stdout) {
      reporter.write_json(std::cout);
    } else {
      std::ofstream file{opt.json_file};
      if (!file) {
        std::fprintf(stderr, "error: cannot write '%s'\n", opt.json_file.c_str());
        return 1;
      }
      reporter.write_json(file);
      if (!opt.quiet) {
        std::printf("\nwrote bench JSON to %s\n", opt.json_file.c_str());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(stderr);
  }
  const std::string_view cmd = argv[1];
  Options opt;
  if (!parse_args(argc, argv, 2, opt)) {
    return 1;
  }
  if (cmd == "list" || cmd == "policies") {
    if (!opt.policy.empty()) {
      // Catch the typo'd subcommand instead of silently ignoring the flag.
      std::fprintf(stderr, "error: --policy only applies to 'run' and 'sweep'\n");
      return 1;
    }
    return cmd == "list" ? cmd_list(opt) : cmd_policies(opt);
  }
  if (cmd == "run") {
    return cmd_run(opt);
  }
  if (cmd == "sweep") {
    return cmd_sweep(opt);
  }
  if (cmd == "bench") {
    return cmd_bench(opt);
  }
  if (cmd == "fuzz") {
    FuzzOptions fuzz;
    fuzz.seed = opt.seed;
    fuzz.count = opt.count;
    fuzz.quick = opt.quick;
    fuzz.dump_dir = opt.dump_dir;
    fuzz.verbose = opt.verbose;
    auto outcome = run_fuzz_campaign(fuzz);
    if (!outcome) {
      std::fprintf(stderr, "error: %s\n", outcome.error().what().c_str());
      return 1;
    }
    return outcome.value().failures == 0 ? 0 : 1;
  }
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    return usage(stdout);
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", argv[1]);
  return usage(stderr);
}
