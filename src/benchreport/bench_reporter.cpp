#include "benchreport/bench_reporter.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/json_writer.hpp"
#include "common/strings.hpp"

// Build provenance, baked in at configure time by src/benchreport/
// CMakeLists.txt so every emitted section records which build produced it.
#ifndef PAM_BENCH_GIT_DESCRIBE
#define PAM_BENCH_GIT_DESCRIBE "unknown"
#endif
#ifndef PAM_BENCH_BUILD_TYPE
#define PAM_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef PAM_BENCH_COMPILER
#define PAM_BENCH_COMPILER "unknown"
#endif
#ifndef PAM_BENCH_CXX_FLAGS
#define PAM_BENCH_CXX_FLAGS ""
#endif

namespace pam {

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kThroughput: return "throughput";
    case MetricKind::kLatency: return "latency";
    case MetricKind::kCount: return "count";
    case MetricKind::kRatio: return "ratio";
    case MetricKind::kInfo: return "info";
  }
  return "info";
}

BenchCase& BenchCase::param(std::string key, std::string value) {
  params_.emplace_back(std::move(key), std::move(value));
  return *this;
}

BenchCase& BenchCase::param(std::string key, double value) {
  return param(std::move(key), format("%g", value));
}

BenchCase& BenchCase::param(std::string key, std::uint64_t value) {
  return param(std::move(key),
               format("%llu", static_cast<unsigned long long>(value)));
}

BenchCase& BenchCase::metric(std::string name, MetricKind kind, double value,
                             std::string unit, std::uint64_t repeats) {
  metrics_.push_back(
      BenchMetric{std::move(name), kind, value, std::move(unit), repeats});
  return *this;
}

BenchReporter::BenchReporter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  if (const char* env = std::getenv("PAM_BENCH_JSON");
      env != nullptr && env[0] != '\0') {
    enabled_ = true;
    path_ = env;
  }
}

BenchReporter::BenchReporter(std::string bench_name, int argc, char** argv)
    : BenchReporter(std::move(bench_name)) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--bench-json") {
      enabled_ = true;
      path_ = "-";
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      enabled_ = true;
      path_ = std::string{arg.substr(13)};
      if (path_.empty()) {
        path_ = "-";
      }
    }
  }
}

BenchCase& BenchReporter::add_case(std::string name) {
  cases_.emplace_back();
  cases_.back().name_ = std::move(name);
  return cases_.back();
}

void BenchReporter::write_json(std::ostream& out) const {
  JsonWriter w{out};
  w.begin_object();
  w.key("schema"); w.value("pam-bench/v1");
  w.key("bench"); w.value(bench_name_);
  w.key("git_describe"); w.value(PAM_BENCH_GIT_DESCRIBE);
  w.key("build_type"); w.value(PAM_BENCH_BUILD_TYPE);
  w.key("compiler"); w.value(PAM_BENCH_COMPILER);
  w.key("build_flags"); w.value(PAM_BENCH_CXX_FLAGS);
  w.key("quick"); w.value(bench_quick_mode());
  w.key("records");
  w.begin_array();
  for (const auto& c : cases_) {
    for (const auto& m : c.metrics_) {
      // One flat record per metric, self-contained after suite merging:
      // (bench, case, params, metric) is the cross-trajectory identity.
      w.begin_object();
      w.key("bench"); w.value(bench_name_);
      w.key("case"); w.value(c.name_);
      w.key("params");
      w.begin_object();
      for (const auto& [k, v] : c.params_) {
        w.key(k); w.value(v);
      }
      w.end_object();
      w.key("metric"); w.value(m.name);
      w.key("kind"); w.value(to_string(m.kind));
      w.key("value"); w.value(m.value);
      w.key("unit"); w.value(m.unit);
      w.key("repeats"); w.value(m.repeats);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
}

int BenchReporter::flush() const {
  if (!enabled_) {
    return 0;
  }
  if (path_ == "-") {
    write_json(std::cout);
    return std::cout.good() ? 0 : 1;
  }
  std::ofstream file{path_};
  if (!file) {
    std::fprintf(stderr, "benchreport: cannot write '%s'\n", path_.c_str());
    return 1;
  }
  write_json(file);
  return file.good() ? 0 : 1;
}

TimingStats time_runs(const BenchTiming& timing, const std::function<void()>& fn) {
  for (int i = 0; i < timing.warmup_runs; ++i) {
    fn();
  }
  TimingStats stats;
  double total = 0.0;
  for (int i = 0; i < timing.repeat_runs; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (i == 0 || ns < stats.best_ns) {
      stats.best_ns = ns;
    }
    if (ns > stats.worst_ns) {
      stats.worst_ns = ns;
    }
    total += ns;
    ++stats.repeats;
  }
  if (stats.repeats > 0) {
    stats.mean_ns = total / static_cast<double>(stats.repeats);
  }
  return stats;
}

bool bench_quick_mode() noexcept {
  const char* env = std::getenv("PAM_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

double time_to_ns(double value, std::string_view unit) noexcept {
  if (unit == "ns") return value;
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  return -1.0;
}

double rate_to_per_s(double value, std::string_view unit) noexcept {
  if (unit == "/s") return value;
  if (unit == "k/s") return value * 1e3;
  if (unit == "M/s") return value * 1e6;
  if (unit == "G/s") return value * 1e9;
  return -1.0;
}

}  // namespace pam
