// Benchmark reporting: the machine-readable perf-trajectory surface.
//
// Every binary under bench/ registers its measurements through a
// BenchReporter and emits one `pam-bench/v1` JSON section when asked to
// (`--bench-json[=FILE]` or the PAM_BENCH_JSON environment variable);
// without that request the reporter is inert and the bench's human-readable
// output is unchanged.  `scripts/run_benches.sh` runs the whole suite and
// merges the sections into a single BENCH_*.json trajectory file that
// `scripts/bench_compare.py` diffs in CI.
//
// The JSON schema is documented in docs/BENCHMARKS.md; treat it as an
// interface: additive changes only, and update the doc (and the jq
// validation in .github/workflows/ci.yml) in the same commit.

#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pam {

/// What a benchmark metric measures, which fixes the direction
/// `bench_compare.py` gates on:
///  - kThroughput: higher is better (events/s, Gbps, bytes/s) — gated;
///  - kLatency:    lower is better (ns/op, us) — gated;
///  - kCount / kRatio / kInfo: context only, never gated (counts, shares,
///    signed deltas, wall-clock totals).
enum class MetricKind {
  kThroughput,
  kLatency,
  kCount,
  kRatio,
  kInfo,
};

/// The schema string for a MetricKind ("throughput", "latency", ...).
[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

/// One measured value of one benchmark case (one `records[]` entry).
struct BenchMetric {
  std::string name;        ///< metric name, e.g. "ns_per_acquire"
  MetricKind kind = MetricKind::kInfo;
  double value = 0.0;
  std::string unit;        ///< canonical unit string, e.g. "ns", "Gbps"
  std::uint64_t repeats = 1;  ///< timing repetitions folded into `value`
};

/// One benchmark case: a named measurement point with identifying
/// parameters and one or more metrics.  The (bench, case, params, metric)
/// tuple is the identity `bench_compare.py` matches across trajectory
/// files, so params must hold only what identifies the point (layout,
/// frame size, server count) — never iteration counts or durations, which
/// quick mode is free to scale.
class BenchCase {
 public:
  /// Adds an identifying parameter (stored and emitted as a string).
  BenchCase& param(std::string key, std::string value);
  /// Adds a numeric identifying parameter (formatted with %g).
  BenchCase& param(std::string key, double value);
  /// Adds an integer identifying parameter.
  BenchCase& param(std::string key, std::uint64_t value);

  /// Records one metric.  `repeats` documents how many timed repetitions
  /// produced `value` (1 for single-shot or derived values).
  BenchCase& metric(std::string name, MetricKind kind, double value,
                    std::string unit, std::uint64_t repeats = 1);

 private:
  friend class BenchReporter;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<BenchMetric> metrics_;
};

/// Collects the cases of one bench binary and serialises them as one
/// `pam-bench/v1` JSON section (see docs/BENCHMARKS.md).
///
/// Typical bench main():
/// ```
///   BenchReporter reporter{"bench_load_sweep", argc, argv};
///   ...
///   reporter.add_case("pool_recycle")
///       .param("frame_bytes", std::uint64_t{1500})
///       .metric("ns_per_acquire", MetricKind::kLatency, ns, "ns", iters);
///   return reporter.flush();
/// ```
class BenchReporter {
 public:
  /// Reporter with JSON output disabled unless PAM_BENCH_JSON is set.
  explicit BenchReporter(std::string bench_name);

  /// Parses `--bench-json[=FILE]` out of argv (in addition to the
  /// PAM_BENCH_JSON environment variable; the flag wins).  FILE `-` or an
  /// omitted FILE means stdout.  Unknown arguments are ignored — benches
  /// own their own flags.
  BenchReporter(std::string bench_name, int argc, char** argv);

  /// Registers a new case; the returned reference stays valid until the
  /// next add_case() call or the reporter is destroyed.
  BenchCase& add_case(std::string name);

  /// True when JSON output was requested (flag or environment).
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Destination file ("-" == stdout); empty when disabled.
  [[nodiscard]] const std::string& output_path() const noexcept { return path_; }

  /// Serialises the section to `out` regardless of enabled().
  void write_json(std::ostream& out) const;

  /// Writes the section to output_path() when enabled (no-op otherwise).
  /// Returns a process exit code: 0 on success, 1 when the file cannot be
  /// written — benches `return reporter.flush();` as their last line.
  [[nodiscard]] int flush() const;

 private:
  std::string bench_name_;
  std::string path_;  ///< "-" == stdout
  bool enabled_ = false;
  std::vector<BenchCase> cases_;
};

/// Warmup/repeat control for time_runs().
struct BenchTiming {
  int warmup_runs = 1;  ///< untimed executions before measuring
  int repeat_runs = 5;  ///< timed executions aggregated into TimingStats
};

/// Aggregate of `repeats` timed executions, in nanoseconds per execution.
struct TimingStats {
  double best_ns = 0.0;   ///< fastest repetition (preferred for gating:
                          ///< least scheduler noise)
  double mean_ns = 0.0;
  double worst_ns = 0.0;
  std::uint64_t repeats = 0;
};

/// Runs `fn` under steady-clock timing: `timing.warmup_runs` untimed, then
/// `timing.repeat_runs` timed.  Returns per-execution stats.
[[nodiscard]] TimingStats time_runs(const BenchTiming& timing,
                                    const std::function<void()>& fn);

/// True when PAM_BENCH_QUICK is set to a non-empty, non-"0" value: benches
/// shrink iteration counts / simulated durations (never the case/metric
/// key set) so the suite fits a CI budget.
[[nodiscard]] bool bench_quick_mode() noexcept;

/// Normalizes a time value to nanoseconds.  `unit` is one of
/// "s", "ms", "us", "ns"; returns a negative value on an unknown unit.
[[nodiscard]] double time_to_ns(double value, std::string_view unit) noexcept;

/// Normalizes a per-second rate to events per second.  `unit` is one of
/// "/s", "k/s", "M/s", "G/s"; returns a negative value on an unknown unit.
[[nodiscard]] double rate_to_per_s(double value, std::string_view unit) noexcept;

}  // namespace pam
