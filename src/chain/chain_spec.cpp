#include "chain/chain_spec.hpp"

#include <cstdlib>

#include "common/strings.hpp"

namespace pam {
namespace {

Result<Attachment> parse_attachment(std::string_view token) {
  const std::string_view trimmed = trim(token);
  if (trimmed == "wire") {
    return Attachment::kWire;
  }
  if (trimmed == "host") {
    return Attachment::kHost;
  }
  return Error{format("expected 'wire' or 'host', got '%.*s'",
                      static_cast<int>(trimmed.size()), trimmed.data())};
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const std::string owned{s};
  out = std::strtod(owned.c_str(), &end);
  return end == owned.c_str() + owned.size();
}

/// Splits `token` at the first occurrence of any character in `seps`,
/// returning the prefix and storing the separator + remainder.
std::string_view take_until(std::string_view& rest, std::string_view seps) {
  const std::size_t pos = rest.find_first_of(seps);
  const std::string_view head = rest.substr(0, pos);
  rest = pos == std::string_view::npos ? std::string_view{} : rest.substr(pos);
  return head;
}

Result<NfSpec> parse_node(std::string_view token, std::size_t index,
                          const CapacityTable& capacities, Location& loc_out) {
  if (token.size() < 3 || token[1] != ':') {
    return Error{format("node '%.*s': expected 'S:' or 'C:' prefix",
                        static_cast<int>(token.size()), token.data())};
  }
  if (token[0] == 'S') {
    loc_out = Location::kSmartNic;
  } else if (token[0] == 'C') {
    loc_out = Location::kCpu;
  } else {
    return Error{format("node '%.*s': side must be 'S' or 'C'",
                        static_cast<int>(token.size()), token.data())};
  }

  std::string_view rest = token.substr(2);
  const std::string_view type_name = take_until(rest, "=@%#");
  const auto type = nf_type_from_string(type_name);
  if (!type) {
    return Error{format("unknown NF type '%.*s'",
                        static_cast<int>(type_name.size()), type_name.data())};
  }

  NfSpec spec;
  spec.type = *type;
  spec.capacity = capacities.lookup(*type);
  spec.name = format("%.*s%zu", static_cast<int>(type_name.size()),
                     type_name.data(), index);

  while (!rest.empty()) {
    const char tag = rest[0];
    rest.remove_prefix(1);
    const std::string_view value = take_until(rest, "=@%#");
    switch (tag) {
      case '=':
        if (value.empty()) {
          return Error{"'=' requires a name"};
        }
        spec.name.assign(value);
        break;
      case '@': {
        double v = 0.0;
        if (!parse_double(value, v) || v <= 0.0 || v > 1.0) {
          return Error{format("bad load factor '%.*s' (need (0,1])",
                              static_cast<int>(value.size()), value.data())};
        }
        spec.load_factor = v;
        break;
      }
      case '%': {
        double v = 0.0;
        if (!parse_double(value, v) || v < 0.0 || v > 1.0) {
          return Error{format("bad pass ratio '%.*s' (need [0,1])",
                              static_cast<int>(value.size()), value.data())};
        }
        spec.pass_ratio = v;
        break;
      }
      case '#': {
        const std::size_t slash = value.find('/');
        double cap_s = 0.0;
        double cap_c = 0.0;
        if (slash == std::string_view::npos ||
            !parse_double(value.substr(0, slash), cap_s) ||
            !parse_double(value.substr(slash + 1), cap_c) || cap_s <= 0.0 ||
            cap_c <= 0.0) {
          return Error{format("bad capacity '%.*s' (need S/C Gbps, e.g. 3.2/10)",
                              static_cast<int>(value.size()), value.data())};
        }
        spec.capacity = CapacityProfile{Gbps{cap_s}, Gbps{cap_c}};
        break;
      }
      default:
        return Error{format("unexpected token tail near '%c'", tag)};
    }
  }
  return spec;
}

}  // namespace

Result<ServiceChain> parse_chain_spec(std::string_view spec,
                                      std::string chain_name,
                                      const CapacityTable& capacities) {
  const auto sections = split(spec, '|');
  if (sections.size() != 3) {
    return Error{format("expected 'ingress | nodes | egress' (got %zu sections)",
                        sections.size())};
  }
  const auto ingress = parse_attachment(sections[0]);
  if (!ingress) {
    return Error{"ingress: " + ingress.error().message};
  }
  const auto egress = parse_attachment(sections[2]);
  if (!egress) {
    return Error{"egress: " + egress.error().message};
  }

  ServiceChain chain{std::move(chain_name)};
  chain.set_ingress(ingress.value());
  chain.set_egress(egress.value());

  std::size_t index = 0;
  for (const auto& raw : split(sections[1], ' ')) {
    const std::string_view token = trim(raw);
    if (token.empty()) {
      continue;
    }
    Location loc = Location::kSmartNic;
    auto node = parse_node(token, index, capacities, loc);
    if (!node) {
      return node.error();
    }
    chain.add_node(std::move(node).value(), loc);
    ++index;
  }
  if (chain.empty()) {
    return Error{"chain has no NFs"};
  }
  try {
    chain.validate();
  } catch (const std::invalid_argument& e) {
    return Error{e.what()};
  }
  return chain;
}

std::string to_chain_spec(const ServiceChain& chain) {
  std::string out = chain.ingress() == Attachment::kWire ? "wire |" : "host |";
  for (const auto& node : chain.nodes()) {
    out += format(" %c:%s=%s", node.location == Location::kSmartNic ? 'S' : 'C',
                  std::string(to_string(node.spec.type)).c_str(),
                  node.spec.name.c_str());
    if (node.spec.load_factor != 1.0) {
      out += format("@%g", node.spec.load_factor);
    }
    if (node.spec.pass_ratio != 1.0) {
      out += format("%%%g", node.spec.pass_ratio);
    }
    out += format("#%g/%g", node.spec.capacity.smartnic.value(),
                  node.spec.capacity.cpu.value());
  }
  out += chain.egress() == Attachment::kWire ? " | wire" : " | host";
  return out;
}

}  // namespace pam
