// Border vNF identification — Step 1 of the PAM algorithm.
//
// A SmartNIC-resident NF is a *border* vNF when at least one neighbouring
// hop (upstream or downstream, counting the virtual ingress/egress
// endpoints) is on the CPU side.  Migrating such an NF to the CPU never
// increases the chain's PCIe crossing count — that is the whole point of
// PAM, and the invariant is proven by `border_migration_is_crossing_safe`
// property tests.
//
// Naming follows the paper: BL (left borders) have their *upstream*
// neighbour on the CPU, BR (right borders) their *downstream* neighbour.
// (The poster's figure labels the two the other way round because its chain
// is drawn right-to-left; the semantics are identical — see DESIGN.md §3.2.)

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chain/service_chain.hpp"

namespace pam {

struct BorderSets {
  std::vector<std::size_t> left;   ///< BL: upstream hop on CPU
  std::vector<std::size_t> right;  ///< BR: downstream hop on CPU

  /// Union of BL and BR, deduplicated (an NF can be in both when both
  /// neighbours are CPU-side), ascending chain order.
  [[nodiscard]] std::vector<std::size_t> all() const;

  [[nodiscard]] bool contains(std::size_t i) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return left.empty() && right.empty(); }

  [[nodiscard]] std::string describe(const ServiceChain& chain) const;
};

/// Step 1: identify the border vNFs of the SmartNIC.
[[nodiscard]] BorderSets find_borders(const ServiceChain& chain);

/// True when node i is SmartNIC-resident with a CPU-side neighbour.
[[nodiscard]] bool is_border(const ServiceChain& chain, std::size_t i);

}  // namespace pam
