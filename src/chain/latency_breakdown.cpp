#include "chain/latency_breakdown.hpp"

#include "common/strings.hpp"

namespace pam {

double LatencyBreakdown::crossing_share() const noexcept {
  if (total.ns() <= 0) {
    return 0.0;
  }
  std::int64_t crossing_ns = 0;
  for (const auto& item : items) {
    if (item.label.find("PCIe") != std::string::npos) {
      crossing_ns += item.amount.ns();
    }
  }
  return static_cast<double>(crossing_ns) / static_cast<double>(total.ns());
}

std::string LatencyBreakdown::render() const {
  std::string out;
  for (const auto& item : items) {
    const double pct = total.ns() > 0 ? static_cast<double>(item.amount.ns()) /
                                            static_cast<double>(total.ns()) * 100.0
                                      : 0.0;
    out += format("  %-28s %12s  %5.1f%%\n", item.label.c_str(),
                  item.amount.to_string().c_str(), pct);
  }
  out += format("  %-28s %12s  100.0%%\n", "TOTAL", total.to_string().c_str());
  return out;
}

LatencyBreakdown breakdown_latency(const ServiceChain& chain, const Server& server,
                                   Bytes size, const Calibration& calibration) {
  LatencyBreakdown breakdown;
  breakdown.total = SimTime::zero();
  auto add = [&](std::string label, SimTime amount) {
    breakdown.items.push_back(LatencyContribution{std::move(label), amount});
    breakdown.total += amount;
  };

  std::uint32_t crossing_index = 0;
  Location side = side_of(chain.ingress());
  for (std::size_t i = 0; i <= chain.size(); ++i) {
    const Location next = i == chain.size() ? side_of(chain.egress())
                                            : chain.location_of(i);
    if (next != side) {
      ++crossing_index;
      add(format("PCIe crossing #%u", crossing_index),
          server.pcie().crossing_latency(size));
      side = next;
    }
    if (i == chain.size()) {
      break;
    }
    const auto& node = chain.node(i);
    const char tag = node.location == Location::kSmartNic ? 'S' : 'C';
    add(format("%s overhead [%c]", node.spec.name.c_str(), tag),
        calibration.nf_overhead(node.location));
    add(format("%s service [%c]", node.spec.name.c_str(), tag),
        serialization_delay(size, node.spec.capacity.on(node.location)) *
            node.spec.load_factor);
  }
  return breakdown;
}

}  // namespace pam
