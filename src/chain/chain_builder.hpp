// Fluent chain construction + the canonical paper scenarios.

#pragma once

#include "chain/service_chain.hpp"

namespace pam {

class ChainBuilder {
 public:
  explicit ChainBuilder(std::string name = "chain",
                        CapacityTable capacities = CapacityTable::paper_defaults());

  ChainBuilder& ingress(Attachment a) noexcept {
    chain_.set_ingress(a);
    return *this;
  }
  ChainBuilder& egress(Attachment a) noexcept {
    chain_.set_egress(a);
    return *this;
  }

  /// Adds an NF with capacities from the table; `load_factor` / `pass_ratio`
  /// default to inline, non-dropping behaviour.
  ChainBuilder& add(NfType type, std::string name, Location loc,
                    double load_factor = 1.0, double pass_ratio = 1.0);

  /// Adds an NF with an explicit capacity profile (overriding the table).
  ChainBuilder& add_custom(NfSpec spec, Location loc);

  /// Validates and returns the chain.
  [[nodiscard]] ServiceChain build() const;

 private:
  ServiceChain chain_;
  CapacityTable capacities_;
};

/// The Figure-1 service chain as interpreted in DESIGN.md §3.1:
///
///   wire -> [S]Firewall -> [S]Monitor -> [S]Logger -> [C]LoadBalancer -> host
///
/// The Logger samples every other packet (load_factor 0.5), which is what
/// makes the Monitor the bottleneck vNF in the overload scenario while
/// Logger retains the smallest SmartNIC capacity — reconciling the poster's
/// Figure 1(b) with its Table 1 (see DESIGN.md §3.3/3.4).
[[nodiscard]] ServiceChain paper_figure1_chain(
    const CapacityTable& capacities = CapacityTable::paper_defaults());

/// Offered load (Gbps) used in the headline overload scenario.  At this rate
/// the SmartNIC utilisation is ~1.46 (overloaded), and one border migration
/// (Logger) brings it to ~0.91 while the CPU stays below 1.0.
[[nodiscard]] Gbps paper_overload_rate() noexcept;

/// Offered load before the traffic spike (both devices comfortably below 1).
[[nodiscard]] Gbps paper_baseline_rate() noexcept;

}  // namespace pam
