// Multi-chain deployments.
//
// Real NFV servers host several service chains at once, all drawing from the
// same SmartNIC and CPU budgets.  A Deployment is a set of chains with their
// current offered loads; utilisation aggregates across chains, and the
// multi-chain PAM variant (core/multi_chain_pam) selects border vNFs from
// the union of all chains' border sets.  This is the "extend PAM" direction
// of the poster's future work.

#pragma once

#include <string>
#include <vector>

#include "chain/chain_analyzer.hpp"
#include "chain/service_chain.hpp"

namespace pam {

struct DeployedChain {
  ServiceChain chain;
  Gbps offered;  ///< current ingress rate of this chain
};

class Deployment {
 public:
  Deployment() = default;

  void add(ServiceChain chain, Gbps offered);

  [[nodiscard]] std::size_t size() const noexcept { return chains_.size(); }
  [[nodiscard]] bool empty() const noexcept { return chains_.empty(); }
  [[nodiscard]] const DeployedChain& at(std::size_t i) const { return chains_.at(i); }
  [[nodiscard]] DeployedChain& at(std::size_t i) { return chains_.at(i); }
  [[nodiscard]] const std::vector<DeployedChain>& chains() const noexcept {
    return chains_;
  }

  /// Aggregate device/link utilisation across all chains.
  [[nodiscard]] UtilizationReport utilization(const ChainAnalyzer& analyzer) const;

  /// Total PCIe crossings per second-equivalent: Σ chain crossings weighted
  /// by offered rate (Gbps-crossings; the link-level load measure).
  [[nodiscard]] double weighted_crossings() const;

  [[nodiscard]] std::string describe() const;

 private:
  std::vector<DeployedChain> chains_;
};

}  // namespace pam
