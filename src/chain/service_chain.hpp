// Service chain representation.
//
// A chain is an ordered sequence of NF specs, each placed on the SmartNIC or
// the CPU, plus two virtual endpoints: where traffic enters (the NIC wire
// port) and where it leaves (back out the wire, or up to host applications).
// Endpoint sides matter because they decide whether migrating the first/last
// NF of a SmartNIC segment adds PCIe crossings — see DESIGN.md §3.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "nf/nf_spec.hpp"

namespace pam {

/// Where the chain's ingress/egress attaches.
enum class Attachment : std::uint8_t {
  kWire,  ///< NIC physical port — SmartNIC side
  kHost,  ///< host application / VM — CPU side
};

[[nodiscard]] constexpr Location side_of(Attachment a) noexcept {
  return a == Attachment::kWire ? Location::kSmartNic : Location::kCpu;
}

struct ChainNode {
  NfSpec spec;
  Location location = Location::kSmartNic;
};

class ServiceChain {
 public:
  explicit ServiceChain(std::string name = "chain") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void set_ingress(Attachment a) noexcept { ingress_ = a; }
  void set_egress(Attachment a) noexcept { egress_ = a; }
  [[nodiscard]] Attachment ingress() const noexcept { return ingress_; }
  [[nodiscard]] Attachment egress() const noexcept { return egress_; }

  void add_node(NfSpec spec, Location location);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] const ChainNode& node(std::size_t i) const { return nodes_.at(i); }
  [[nodiscard]] const std::vector<ChainNode>& nodes() const noexcept { return nodes_; }

  [[nodiscard]] std::optional<std::size_t> index_of(const std::string& nf_name) const noexcept;

  void set_location(std::size_t i, Location loc) { nodes_.at(i).location = loc; }
  [[nodiscard]] Location location_of(std::size_t i) const { return nodes_.at(i).location; }

  /// Effective side of the hop upstream of node i (node i-1, or ingress).
  [[nodiscard]] Location upstream_side(std::size_t i) const;
  /// Effective side of the hop downstream of node i (node i+1, or egress).
  [[nodiscard]] Location downstream_side(std::size_t i) const;

  /// Number of PCIe traversals a packet makes end to end: boundaries where
  /// consecutive effective locations differ in the sequence
  /// [ingress, node_0, ..., node_{n-1}, egress].
  [[nodiscard]] std::uint32_t pcie_crossings() const noexcept;

  /// Change in pcie_crossings() if node i moved to the other device
  /// (negative == fewer crossings).  Does not modify the chain.
  [[nodiscard]] int crossing_delta_if_migrated(std::size_t i) const;

  /// Throughput arriving at node i when `ingress_rate` enters the chain:
  /// ingress_rate x Π_{j<i} pass_ratio_j.  This is the θ_cur each NF sees.
  [[nodiscard]] Gbps offered_at(std::size_t i, Gbps ingress_rate) const;

  /// Rate crossing the boundary *before* node i (i in [0, size()]; size()
  /// == the egress boundary).
  [[nodiscard]] Gbps rate_at_boundary(std::size_t i, Gbps ingress_rate) const;

  /// Names must be unique and specs sane; throws std::invalid_argument.
  void validate() const;

  /// Compact rendering, e.g. "wire ->[S]FW ->[S]Mon ->[C]LB -> host".
  [[nodiscard]] std::string describe() const;

 private:
  std::string name_;
  std::vector<ChainNode> nodes_;
  Attachment ingress_ = Attachment::kWire;
  Attachment egress_ = Attachment::kHost;
};

}  // namespace pam
