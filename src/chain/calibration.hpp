// Calibration constants for the performance models (DESIGN.md §6).
//
// These are the only "magic numbers" in the reproduction; everything else is
// either taken verbatim from the paper (Table 1 capacities) or derived.
// Rationale:
//
//  - kNfOverheadSmartNic / kNfOverheadCpu: per-NF, size-independent
//    processing overhead.  NFV virtualisation adds tens of microseconds per
//    hop ([7] NFP, cited by the poster for "virtualization techniques in NFV
//    significantly increase processing latency"); NPU pipelines avoid most
//    of the kernel/vswitch cost, hence the lower SmartNIC figure.
//
//  - PCIe per-crossing fixed cost 32 us: the poster measures "tens of
//    microseconds" for *two* extra crossings; with DMA batching and
//    interrupt moderation a per-packet effective cost in the tens of us is
//    the regime their Figure 2(a) axis (0-800 us) implies.
//
//  - kQueueCapacityPackets: per-device drop-tail queue, sized like a
//    typical NIC descriptor ring segment.  Determines Original's latency
//    ceiling while overloaded.

#pragma once

#include "common/units.hpp"
#include "nf/nf_spec.hpp"

namespace pam {

struct Calibration {
  /// Fixed per-NF processing overhead by device (independent of size).
  /// 55/70 us yield the paper's Figure-2(a) shape: PAM ~18% below the naive
  /// migration and within ~5% of the pre-migration chain (EXPERIMENTS.md).
  SimTime nf_overhead_smartnic = SimTime::microseconds(55.0);
  SimTime nf_overhead_cpu = SimTime::microseconds(70.0);

  /// Per-device drop-tail queue capacity used by the simulator.
  std::size_t queue_capacity_packets = 256;

  /// Cap on the analytic queueing inflation factor 1/(1-rho); beyond this
  /// the device is effectively saturated and the simulator's drop behaviour
  /// takes over.
  double max_queue_inflation = 16.0;

  [[nodiscard]] SimTime nf_overhead(Location loc) const noexcept {
    return loc == Location::kSmartNic ? nf_overhead_smartnic : nf_overhead_cpu;
  }

  [[nodiscard]] static const Calibration& defaults() noexcept {
    static const Calibration c{};
    return c;
  }
};

}  // namespace pam
