#include "chain/deployment.hpp"

#include "common/strings.hpp"

namespace pam {

void Deployment::add(ServiceChain chain, Gbps offered) {
  chain.validate();
  chains_.push_back(DeployedChain{std::move(chain), offered});
}

UtilizationReport Deployment::utilization(const ChainAnalyzer& analyzer) const {
  UtilizationReport total;
  for (const auto& deployed : chains_) {
    const UtilizationReport one =
        analyzer.utilization(deployed.chain, deployed.offered);
    total.smartnic += one.smartnic;
    total.cpu += one.cpu;
    total.pcie += one.pcie;
    total.wire += one.wire;  // chains share the NIC's physical ports
  }
  return total;
}

double Deployment::weighted_crossings() const {
  double total = 0.0;
  for (const auto& deployed : chains_) {
    total += static_cast<double>(deployed.chain.pcie_crossings()) *
             deployed.offered.value();
  }
  return total;
}

std::string Deployment::describe() const {
  std::string out = format("Deployment{%zu chains}", chains_.size());
  for (const auto& deployed : chains_) {
    out += format("\n  [%s] %s  @ %s", deployed.chain.name().c_str(),
                  deployed.chain.describe().c_str(),
                  deployed.offered.to_string().c_str());
  }
  return out;
}

}  // namespace pam
