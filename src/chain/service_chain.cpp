#include "chain/service_chain.hpp"

#include <stdexcept>
#include <unordered_set>

#include "common/strings.hpp"

namespace pam {

void ServiceChain::add_node(NfSpec spec, Location location) {
  nodes_.push_back(ChainNode{std::move(spec), location});
}

std::optional<std::size_t> ServiceChain::index_of(const std::string& nf_name) const noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].spec.name == nf_name) {
      return i;
    }
  }
  return std::nullopt;
}

Location ServiceChain::upstream_side(std::size_t i) const {
  if (i >= nodes_.size()) {
    throw std::out_of_range("upstream_side: bad index");
  }
  return i == 0 ? side_of(ingress_) : nodes_[i - 1].location;
}

Location ServiceChain::downstream_side(std::size_t i) const {
  if (i >= nodes_.size()) {
    throw std::out_of_range("downstream_side: bad index");
  }
  return i + 1 == nodes_.size() ? side_of(egress_) : nodes_[i + 1].location;
}

std::uint32_t ServiceChain::pcie_crossings() const noexcept {
  std::uint32_t crossings = 0;
  Location prev = side_of(ingress_);
  for (const auto& n : nodes_) {
    if (n.location != prev) {
      ++crossings;
    }
    prev = n.location;
  }
  if (prev != side_of(egress_)) {
    ++crossings;
  }
  return crossings;
}

int ServiceChain::crossing_delta_if_migrated(std::size_t i) const {
  if (i >= nodes_.size()) {
    throw std::out_of_range("crossing_delta_if_migrated: bad index");
  }
  const Location up = upstream_side(i);
  const Location down = downstream_side(i);
  const Location cur = nodes_[i].location;
  const Location moved = other(cur);
  const auto boundary = [](Location a, Location b) { return a != b ? 1 : 0; };
  const int before = boundary(up, cur) + boundary(cur, down);
  const int after = boundary(up, moved) + boundary(moved, down);
  return after - before;
}

Gbps ServiceChain::offered_at(std::size_t i, Gbps ingress_rate) const {
  if (i >= nodes_.size()) {
    throw std::out_of_range("offered_at: bad index");
  }
  double rate = ingress_rate.value();
  for (std::size_t j = 0; j < i; ++j) {
    rate *= nodes_[j].spec.pass_ratio;
  }
  return Gbps{rate};
}

Gbps ServiceChain::rate_at_boundary(std::size_t i, Gbps ingress_rate) const {
  if (i > nodes_.size()) {
    throw std::out_of_range("rate_at_boundary: bad index");
  }
  double rate = ingress_rate.value();
  for (std::size_t j = 0; j < i; ++j) {
    rate *= nodes_[j].spec.pass_ratio;
  }
  return Gbps{rate};
}

void ServiceChain::validate() const {
  std::unordered_set<std::string> names;
  for (const auto& n : nodes_) {
    if (n.spec.name.empty()) {
      throw std::invalid_argument("chain node with empty name");
    }
    if (!names.insert(n.spec.name).second) {
      throw std::invalid_argument(format("duplicate NF name '%s' in chain '%s'",
                                         n.spec.name.c_str(), name_.c_str()));
    }
    if (n.spec.capacity.smartnic.value() <= 0.0 || n.spec.capacity.cpu.value() <= 0.0) {
      throw std::invalid_argument(
          format("NF '%s' has a non-positive capacity", n.spec.name.c_str()));
    }
    if (n.spec.load_factor < 0.0 || n.spec.load_factor > 1.0) {
      throw std::invalid_argument(
          format("NF '%s' load_factor outside [0,1]", n.spec.name.c_str()));
    }
    if (n.spec.pass_ratio < 0.0 || n.spec.pass_ratio > 1.0) {
      throw std::invalid_argument(
          format("NF '%s' pass_ratio outside [0,1]", n.spec.name.c_str()));
    }
  }
}

std::string ServiceChain::describe() const {
  std::string out = ingress_ == Attachment::kWire ? "wire" : "host";
  for (const auto& n : nodes_) {
    out += format(" ->[%s]%s", n.location == Location::kSmartNic ? "S" : "C",
                  n.spec.name.c_str());
  }
  out += egress_ == Attachment::kWire ? " -> wire" : " -> host";
  return out;
}

}  // namespace pam
