// Textual chain specifications.
//
// Operators describe chains in config files and on command lines; this
// parser turns a one-line spec into a validated ServiceChain:
//
//   "wire | S:Firewall S:Monitor S:Logger@0.5 C:LoadBalancer | host"
//
// Grammar (whitespace-separated tokens, three '|'-separated sections):
//
//   spec     := ingress '|' nodes '|' egress
//   ingress  := 'wire' | 'host'
//   egress   := 'wire' | 'host'
//   nodes    := node+
//   node     := side ':' type [ '=' name ] [ '@' load_factor ]
//               [ '%' pass_ratio ] [ '#' cap_s '/' cap_c ]
//   side     := 'S' | 'C'
//   type     := Firewall | Logger | Monitor | LoadBalancer | NAT | DPI |
//               RateLimiter | Encryptor
//
// Examples:
//   S:Logger@0.5          sampling logger, every 2nd packet
//   S:Firewall%0.9        firewall passing 90% of traffic
//   C:Monitor#3.2/10      explicit capacities (Gbps SmartNIC/CPU)
//   S:NAT=cgnat1          explicit instance name
//
// Parsing failures return Result errors with the offending token.

#pragma once

#include <string>
#include <string_view>

#include "chain/service_chain.hpp"
#include "common/result.hpp"

namespace pam {

/// Parses `spec` (see grammar above).  Instance names default to
/// "<type><index>"; capacities default to CapacityTable::paper_defaults().
[[nodiscard]] Result<ServiceChain> parse_chain_spec(
    std::string_view spec, std::string chain_name = "chain",
    const CapacityTable& capacities = CapacityTable::paper_defaults());

/// Inverse: a spec string that parse_chain_spec() maps back to `chain`
/// (modulo default fields).
[[nodiscard]] std::string to_chain_spec(const ServiceChain& chain);

}  // namespace pam
