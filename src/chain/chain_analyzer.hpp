// Closed-form performance model of a placed service chain on a server.
//
// Implements the paper's linear resource model exactly (utilisation =
// Σ θ_cur/θ^D_i per device, Eq. 2/3) plus first-order latency and
// throughput predictions:
//
//   latency  = Σ_nodes [ overhead(loc) + service(size, θ) x queue-inflation ]
//            + Σ_crossings pcie.crossing_latency(size)
//
//   max rate = 1 / max(unit-utilisation of SmartNIC, CPU, PCIe link)
//
// The discrete-event simulator (pam::sim) measures the same quantities
// empirically; `analyzer_matches_simulator` integration tests keep the two
// honest against each other.

#pragma once

#include <string>

#include "chain/calibration.hpp"
#include "chain/service_chain.hpp"
#include "device/server.hpp"

namespace pam {

/// Device-level load at a given ingress rate.
struct UtilizationReport {
  double smartnic = 0.0;  ///< Σ θ_cur/θ^S_i over SmartNIC residents
  double cpu = 0.0;       ///< Σ θ_cur/θ^C_i + per-crossing host cost
  double pcie = 0.0;      ///< aggregate link utilisation
  double wire = 0.0;      ///< ingress rate over the NIC's physical ports

  [[nodiscard]] bool smartnic_overloaded() const noexcept { return smartnic >= 1.0; }
  [[nodiscard]] bool cpu_overloaded() const noexcept { return cpu >= 1.0; }
  [[nodiscard]] bool any_overloaded() const noexcept {
    return smartnic_overloaded() || cpu_overloaded() || pcie >= 1.0 || wire >= 1.0;
  }
  [[nodiscard]] double bottleneck() const noexcept;

  [[nodiscard]] std::string describe() const;
};

class ChainAnalyzer {
 public:
  explicit ChainAnalyzer(const Server& server,
                         Calibration calibration = Calibration::defaults());

  /// Utilisation of each device when `ingress_rate` enters the chain.
  [[nodiscard]] UtilizationReport utilization(const ServiceChain& chain,
                                              Gbps ingress_rate) const;

  /// Largest ingress rate with no device (or the link) at >= 1.0 utilisation.
  [[nodiscard]] Gbps max_sustainable_rate(const ServiceChain& chain) const;

  /// Mean end-to-end latency prediction for frames of `size` at
  /// `ingress_rate`.  Valid below saturation; above it the queue-inflation
  /// factor saturates at Calibration::max_queue_inflation.
  [[nodiscard]] SimTime predicted_latency(const ServiceChain& chain,
                                          Gbps ingress_rate, Bytes size) const;

  /// Zero-load (structural) latency: overheads + service + crossings, no
  /// queueing.  This isolates exactly what PAM optimises.
  [[nodiscard]] SimTime structural_latency(const ServiceChain& chain, Bytes size) const;

  /// Egress goodput when `ingress_rate` is offered: drops at saturated
  /// devices cap the carried rate at max_sustainable_rate().
  [[nodiscard]] Gbps predicted_goodput(const ServiceChain& chain, Gbps ingress_rate) const;

  [[nodiscard]] const Calibration& calibration() const noexcept { return calibration_; }
  [[nodiscard]] const Server& server() const noexcept { return *server_; }

 private:
  [[nodiscard]] double queue_inflation(double rho) const noexcept;

  const Server* server_;  ///< non-owning; must outlive the analyzer
  Calibration calibration_;
};

}  // namespace pam
