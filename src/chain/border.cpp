#include "chain/border.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace pam {

std::vector<std::size_t> BorderSets::all() const {
  std::vector<std::size_t> out = left;
  out.insert(out.end(), right.begin(), right.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool BorderSets::contains(std::size_t i) const noexcept {
  return std::find(left.begin(), left.end(), i) != left.end() ||
         std::find(right.begin(), right.end(), i) != right.end();
}

std::string BorderSets::describe(const ServiceChain& chain) const {
  std::string out = "BL={";
  for (std::size_t k = 0; k < left.size(); ++k) {
    out += (k ? "," : "") + chain.node(left[k]).spec.name;
  }
  out += "} BR={";
  for (std::size_t k = 0; k < right.size(); ++k) {
    out += (k ? "," : "") + chain.node(right[k]).spec.name;
  }
  out += "}";
  return out;
}

bool is_border(const ServiceChain& chain, std::size_t i) {
  if (chain.location_of(i) != Location::kSmartNic) {
    return false;
  }
  return chain.upstream_side(i) == Location::kCpu ||
         chain.downstream_side(i) == Location::kCpu;
}

BorderSets find_borders(const ServiceChain& chain) {
  BorderSets sets;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (chain.location_of(i) != Location::kSmartNic) {
      continue;
    }
    if (chain.upstream_side(i) == Location::kCpu) {
      sets.left.push_back(i);
    }
    if (chain.downstream_side(i) == Location::kCpu) {
      sets.right.push_back(i);
    }
  }
  return sets;
}

}  // namespace pam
