#include "chain/chain_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.hpp"

namespace pam {

double UtilizationReport::bottleneck() const noexcept {
  return std::max(std::max(smartnic, cpu), std::max(pcie, wire));
}

std::string UtilizationReport::describe() const {
  return format("util{S=%.3f%s, C=%.3f%s, PCIe=%.3f, wire=%.3f}", smartnic,
                smartnic_overloaded() ? " OVERLOADED" : "", cpu,
                cpu_overloaded() ? " OVERLOADED" : "", pcie, wire);
}

ChainAnalyzer::ChainAnalyzer(const Server& server, Calibration calibration)
    : server_(&server), calibration_(calibration) {}

UtilizationReport ChainAnalyzer::utilization(const ServiceChain& chain,
                                             Gbps ingress_rate) const {
  UtilizationReport report;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const auto& node = chain.node(i);
    const Gbps offered = chain.offered_at(i, ingress_rate);
    const double u = node.spec.utilization_at(node.location, offered);
    if (node.location == Location::kSmartNic) {
      report.smartnic += u;
    } else {
      report.cpu += u;
    }
  }
  // Traffic entering or leaving at the wire is bounded by the NIC's port
  // capacity regardless of placement.
  if (chain.ingress() == Attachment::kWire || chain.egress() == Attachment::kWire) {
    report.wire = ingress_rate / server_->nic().wire_capacity();
  }
  // Walk the boundary sequence charging each side change to the link and to
  // the host driver.
  const auto& pcie = server_->pcie();
  Location prev = side_of(chain.ingress());
  for (std::size_t i = 0; i <= chain.size(); ++i) {
    const Location cur = i == chain.size() ? side_of(chain.egress())
                                           : chain.location_of(i);
    if (cur != prev) {
      const Gbps boundary_rate = chain.rate_at_boundary(i, ingress_rate);
      report.pcie += boundary_rate / pcie.bandwidth();
      report.cpu += pcie.host_utilization_per_crossing(boundary_rate);
    }
    prev = cur;
  }
  return report;
}

Gbps ChainAnalyzer::max_sustainable_rate(const ServiceChain& chain) const {
  using namespace pam::literals;
  // All utilisations are linear in the ingress rate, so evaluate at 1 Gbps
  // and invert the bottleneck.
  const UtilizationReport unit = utilization(chain, 1.0_gbps);
  const double worst = unit.bottleneck();
  if (worst <= 0.0) {
    return Gbps{std::numeric_limits<double>::infinity()};
  }
  return Gbps{1.0 / worst};
}

double ChainAnalyzer::queue_inflation(double rho) const noexcept {
  if (rho >= 1.0) {
    return calibration_.max_queue_inflation;
  }
  return std::min(1.0 / (1.0 - rho), calibration_.max_queue_inflation);
}

SimTime ChainAnalyzer::structural_latency(const ServiceChain& chain, Bytes size) const {
  SimTime total = SimTime::zero();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const auto& node = chain.node(i);
    total += calibration_.nf_overhead(node.location);
    // Mean per-packet service: only load_factor of packets incur the full
    // service time.
    const Gbps cap = node.spec.capacity.on(node.location);
    total += serialization_delay(size, cap) * node.spec.load_factor;
  }
  Location prev = side_of(chain.ingress());
  for (std::size_t i = 0; i <= chain.size(); ++i) {
    const Location cur = i == chain.size() ? side_of(chain.egress())
                                           : chain.location_of(i);
    if (cur != prev) {
      total += server_->pcie().crossing_latency(size);
    }
    prev = cur;
  }
  return total;
}

SimTime ChainAnalyzer::predicted_latency(const ServiceChain& chain,
                                         Gbps ingress_rate, Bytes size) const {
  const UtilizationReport report = utilization(chain, ingress_rate);
  const double inflate_s = queue_inflation(report.smartnic);
  const double inflate_c = queue_inflation(report.cpu);

  SimTime total = SimTime::zero();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const auto& node = chain.node(i);
    const double inflate =
        node.location == Location::kSmartNic ? inflate_s : inflate_c;
    const Gbps cap = node.spec.capacity.on(node.location);
    total += calibration_.nf_overhead(node.location);
    total += serialization_delay(size, cap) * node.spec.load_factor * inflate;
  }
  Location prev = side_of(chain.ingress());
  for (std::size_t i = 0; i <= chain.size(); ++i) {
    const Location cur = i == chain.size() ? side_of(chain.egress())
                                           : chain.location_of(i);
    if (cur != prev) {
      total += server_->pcie().crossing_latency(size);
    }
    prev = cur;
  }
  return total;
}

Gbps ChainAnalyzer::predicted_goodput(const ServiceChain& chain,
                                      Gbps ingress_rate) const {
  const Gbps cap = max_sustainable_rate(chain);
  const double carried = std::min(ingress_rate.value(), cap.value());
  double pass = 1.0;
  for (const auto& node : chain.nodes()) {
    pass *= node.spec.pass_ratio;
  }
  return Gbps{carried * pass};
}

}  // namespace pam
