// Per-hop latency decomposition.
//
// Attributes a chain's structural latency to its components — per-NF
// virtualisation overhead, per-NF service, and each PCIe crossing — so
// benches and operators can see exactly *where* the naive migration loses
// its ~18% (spoiler: two crossing line items).

#pragma once

#include <string>
#include <vector>

#include "chain/calibration.hpp"
#include "chain/service_chain.hpp"
#include "device/server.hpp"

namespace pam {

struct LatencyContribution {
  std::string label;   ///< e.g. "Monitor service [S]" or "PCIe crossing #2"
  SimTime amount;
};

struct LatencyBreakdown {
  std::vector<LatencyContribution> items;
  SimTime total;

  /// Fraction of the total attributed to PCIe crossings.
  [[nodiscard]] double crossing_share() const noexcept;

  /// ASCII table with a percentage column.
  [[nodiscard]] std::string render() const;
};

/// Decomposes the structural (zero-load) latency of `chain` for frames of
/// `size`.  Sums to ChainAnalyzer::structural_latency exactly.
[[nodiscard]] LatencyBreakdown breakdown_latency(
    const ServiceChain& chain, const Server& server, Bytes size,
    const Calibration& calibration = Calibration::defaults());

}  // namespace pam
