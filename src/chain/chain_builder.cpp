#include "chain/chain_builder.hpp"

namespace pam {

using namespace pam::literals;

ChainBuilder::ChainBuilder(std::string name, CapacityTable capacities)
    : chain_(std::move(name)), capacities_(std::move(capacities)) {}

ChainBuilder& ChainBuilder::add(NfType type, std::string name, Location loc,
                                double load_factor, double pass_ratio) {
  NfSpec spec;
  spec.name = std::move(name);
  spec.type = type;
  spec.capacity = capacities_.lookup(type);
  spec.load_factor = load_factor;
  spec.pass_ratio = pass_ratio;
  chain_.add_node(std::move(spec), loc);
  return *this;
}

ChainBuilder& ChainBuilder::add_custom(NfSpec spec, Location loc) {
  chain_.add_node(std::move(spec), loc);
  return *this;
}

ServiceChain ChainBuilder::build() const {
  chain_.validate();
  return chain_;
}

ServiceChain paper_figure1_chain(const CapacityTable& capacities) {
  return ChainBuilder{"figure1", capacities}
      .ingress(Attachment::kWire)
      .egress(Attachment::kHost)
      .add(NfType::kFirewall, "Firewall", Location::kSmartNic)
      .add(NfType::kMonitor, "Monitor", Location::kSmartNic)
      .add(NfType::kLogger, "Logger", Location::kSmartNic, /*load_factor=*/0.5)
      .add(NfType::kLoadBalancer, "LoadBalancer", Location::kCpu)
      .build();
}

Gbps paper_overload_rate() noexcept { return 2.2_gbps; }

Gbps paper_baseline_rate() noexcept { return 1.2_gbps; }

}  // namespace pam
