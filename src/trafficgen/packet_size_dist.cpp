#include "trafficgen/packet_size_dist.hpp"

#include <cassert>
#include <stdexcept>

#include "common/strings.hpp"

namespace pam {

PacketSizeDistribution PacketSizeDistribution::fixed(std::size_t size) {
  PacketSizeDistribution d;
  d.kind_ = Kind::kFixed;
  d.fixed_ = size;
  return d;
}

PacketSizeDistribution PacketSizeDistribution::uniform(std::size_t lo, std::size_t hi) {
  assert(lo <= hi);
  PacketSizeDistribution d;
  d.kind_ = Kind::kUniform;
  d.lo_ = lo;
  d.hi_ = hi;
  return d;
}

PacketSizeDistribution PacketSizeDistribution::imix() {
  return discrete({{64, 7.0}, {570, 4.0}, {1500, 1.0}});
}

PacketSizeDistribution PacketSizeDistribution::discrete(
    std::vector<std::pair<std::size_t, double>> weighted_sizes) {
  if (weighted_sizes.empty()) {
    throw std::invalid_argument("discrete size distribution needs entries");
  }
  PacketSizeDistribution d;
  d.kind_ = Kind::kDiscrete;
  d.weighted_ = std::move(weighted_sizes);
  double total = 0.0;
  for (const auto& [size, w] : d.weighted_) {
    if (w <= 0.0) {
      throw std::invalid_argument("non-positive weight in size distribution");
    }
    total += w;
  }
  double cum = 0.0;
  for (const auto& [size, w] : d.weighted_) {
    cum += w / total;
    d.cdf_.push_back(cum);
  }
  d.cdf_.back() = 1.0;
  return d;
}

std::size_t PacketSizeDistribution::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return fixed_;
    case Kind::kUniform:
      return static_cast<std::size_t>(rng.uniform_u64(lo_, hi_));
    case Kind::kDiscrete: {
      const double u = rng.next_double();
      for (std::size_t i = 0; i < cdf_.size(); ++i) {
        if (u <= cdf_[i]) {
          return weighted_[i].first;
        }
      }
      return weighted_.back().first;
    }
  }
  return fixed_;
}

double PacketSizeDistribution::mean() const noexcept {
  switch (kind_) {
    case Kind::kFixed:
      return static_cast<double>(fixed_);
    case Kind::kUniform:
      return (static_cast<double>(lo_) + static_cast<double>(hi_)) / 2.0;
    case Kind::kDiscrete: {
      double total_w = 0.0;
      double sum = 0.0;
      for (const auto& [size, w] : weighted_) {
        total_w += w;
        sum += static_cast<double>(size) * w;
      }
      return sum / total_w;
    }
  }
  return 0.0;
}

std::string PacketSizeDistribution::describe() const {
  switch (kind_) {
    case Kind::kFixed:
      return format("fixed(%zuB)", fixed_);
    case Kind::kUniform:
      return format("uniform[%zu,%zu]B", lo_, hi_);
    case Kind::kDiscrete:
      return format("discrete(%zu sizes, mean %.0fB)", weighted_.size(), mean());
  }
  return "?";
}

const std::vector<std::size_t>& paper_size_sweep() {
  static const std::vector<std::size_t> sweep = {64, 128, 256, 512, 1024, 1500};
  return sweep;
}

}  // namespace pam
