// Configuration bundle describing one traffic source — the simulator's
// stand-in for the paper's DPDK packet sender.

#pragma once

#include <cstdint>
#include <memory>

#include "packet/trace.hpp"
#include "trafficgen/flow_generator.hpp"
#include "trafficgen/packet_size_dist.hpp"
#include "trafficgen/rate_profile.hpp"

namespace pam {

enum class ArrivalProcess : std::uint8_t {
  kCbr,      ///< constant bit rate: deterministic inter-arrivals
  kPoisson,  ///< exponential inter-arrivals at the same mean rate
};

struct TrafficSourceConfig {
  RateProfile rate = RateProfile::constant(Gbps{1.0});
  ArrivalProcess process = ArrivalProcess::kCbr;
  PacketSizeDistribution sizes = PacketSizeDistribution::fixed(512);
  FlowGeneratorConfig flows{};
  std::uint64_t seed = 1;

  /// When set, the synthetic generator above is ignored and the capture is
  /// replayed instead: frames injected verbatim at the recorded timestamps
  /// (shifted so the first record lands at t=0).  With `replay_loop` the
  /// capture repeats back-to-back until the run's horizon.
  std::shared_ptr<const PacketTrace> replay;
  bool replay_loop = false;
};

}  // namespace pam
