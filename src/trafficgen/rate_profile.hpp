// Offered-load-over-time profiles.
//
// "As the network traffic fluctuates, NFs on SmartNIC can also be
// overloaded" — the adaptive experiments drive the chain with a rate that
// changes over time (step spike, diurnal sinusoid) and let the controller
// react.  A profile maps simulated time to an instantaneous target rate.

#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace pam {

class RateProfile {
 public:
  /// Constant `rate` forever.
  [[nodiscard]] static RateProfile constant(Gbps rate);

  /// `before` until `at`, then `after` (the headline overload scenario:
  /// baseline -> spike).
  [[nodiscard]] static RateProfile step(Gbps before, Gbps after, SimTime at);

  /// Piecewise-constant schedule of (start_time, rate) points, sorted.
  [[nodiscard]] static RateProfile schedule(std::vector<std::pair<SimTime, Gbps>> points);

  /// base + amplitude * sin(2*pi*t/period), clamped at >= floor.
  [[nodiscard]] static RateProfile sinusoid(Gbps base, Gbps amplitude, SimTime period,
                                            Gbps floor = Gbps{0.05});

  [[nodiscard]] Gbps at(SimTime t) const noexcept;

  [[nodiscard]] std::string describe() const;

 private:
  enum class Kind { kConstant, kSchedule, kSinusoid };

  Kind kind_ = Kind::kConstant;
  Gbps base_{1.0};
  Gbps amplitude_{0.0};
  Gbps floor_{0.05};
  SimTime period_ = SimTime::seconds(1.0);
  std::vector<std::pair<SimTime, Gbps>> points_;
};

}  // namespace pam
