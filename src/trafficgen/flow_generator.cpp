#include "trafficgen/flow_generator.hpp"

#include <cassert>

namespace pam {

FlowGenerator::FlowGenerator(FlowGeneratorConfig config, std::uint64_t seed)
    : config_(config) {
  assert(config.flow_count > 0);
  Rng build_rng{seed};
  flows_.reserve(config.flow_count);
  for (std::size_t i = 0; i < config.flow_count; ++i) {
    FiveTuple t;
    // Distinct client address + ephemeral port per flow.
    t.src_ip = config.client_net | static_cast<std::uint32_t>(build_rng.uniform_u64(1, (1u << 24) - 2));
    t.src_port = static_cast<std::uint16_t>(build_rng.uniform_u64(1024, 65535));
    t.dst_ip = config.service_ip;
    t.dst_port = config.service_port;
    t.proto = build_rng.chance(config.tcp_fraction) ? IpProto::kTcp : IpProto::kUdp;
    flows_.push_back(t);
  }
}

const FiveTuple& FlowGenerator::next(Rng& rng) {
  if (config_.zipf_skew <= 0.0) {
    return flows_[rng.bounded(flows_.size())];
  }
  return flows_[rng.zipf(flows_.size(), config_.zipf_skew)];
}

}  // namespace pam
