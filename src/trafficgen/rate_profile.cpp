#include "trafficgen/rate_profile.hpp"

#include <cassert>

#include "common/strings.hpp"

namespace pam {

RateProfile RateProfile::constant(Gbps rate) {
  RateProfile p;
  p.kind_ = Kind::kConstant;
  p.base_ = rate;
  return p;
}

RateProfile RateProfile::step(Gbps before, Gbps after, SimTime at) {
  return schedule({{SimTime::zero(), before}, {at, after}});
}

RateProfile RateProfile::schedule(std::vector<std::pair<SimTime, Gbps>> points) {
  assert(!points.empty());
  RateProfile p;
  p.kind_ = Kind::kSchedule;
  p.points_ = std::move(points);
  std::sort(p.points_.begin(), p.points_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return p;
}

RateProfile RateProfile::sinusoid(Gbps base, Gbps amplitude, SimTime period, Gbps floor) {
  assert(period.ns() > 0);
  RateProfile p;
  p.kind_ = Kind::kSinusoid;
  p.base_ = base;
  p.amplitude_ = amplitude;
  p.period_ = period;
  p.floor_ = floor;
  return p;
}

Gbps RateProfile::at(SimTime t) const noexcept {
  switch (kind_) {
    case Kind::kConstant:
      return base_;
    case Kind::kSchedule: {
      Gbps current = points_.front().second;
      for (const auto& [start, rate] : points_) {
        if (t >= start) {
          current = rate;
        } else {
          break;
        }
      }
      return current;
    }
    case Kind::kSinusoid: {
      const double phase = 2.0 * 3.14159265358979323846 * (t / period_);
      const double v = base_.value() + amplitude_.value() * std::sin(phase);
      return Gbps{std::max(v, floor_.value())};
    }
  }
  return base_;
}

std::string RateProfile::describe() const {
  switch (kind_) {
    case Kind::kConstant:
      return format("constant(%s)", base_.to_string().c_str());
    case Kind::kSchedule:
      return format("schedule(%zu points, start %s)", points_.size(),
                    points_.front().second.to_string().c_str());
    case Kind::kSinusoid:
      return format("sinusoid(base %s, amp %s, period %s)",
                    base_.to_string().c_str(), amplitude_.to_string().c_str(),
                    period_.to_string().c_str());
  }
  return "?";
}

}  // namespace pam
