// Packet size distributions for the workload generator.
//
// The paper's evaluation "varies the packet size from 64B to 1500B with a
// DPDK packet sender"; kFixed over a sweep of sizes reproduces that, kImix
// provides the standard 7:4:1 Internet mix for the extended experiments.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace pam {

class PacketSizeDistribution {
 public:
  /// Every packet `size` bytes.
  [[nodiscard]] static PacketSizeDistribution fixed(std::size_t size);
  /// Uniform in [lo, hi].
  [[nodiscard]] static PacketSizeDistribution uniform(std::size_t lo, std::size_t hi);
  /// Classic IMIX: 64B x7 : 570B x4 : 1500B x1 (by packet count).
  [[nodiscard]] static PacketSizeDistribution imix();
  /// Arbitrary discrete mix of (size, weight) pairs.
  [[nodiscard]] static PacketSizeDistribution discrete(
      std::vector<std::pair<std::size_t, double>> weighted_sizes);

  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Expected size in bytes (exact for all kinds).
  [[nodiscard]] double mean() const noexcept;

  [[nodiscard]] std::string describe() const;

 private:
  enum class Kind { kFixed, kUniform, kDiscrete };

  Kind kind_ = Kind::kFixed;
  std::size_t fixed_ = 64;
  std::size_t lo_ = 64;
  std::size_t hi_ = 1500;
  std::vector<std::pair<std::size_t, double>> weighted_;
  std::vector<double> cdf_;
};

/// The exact sweep the paper uses for Figure 2(a): 64B .. 1500B.
[[nodiscard]] const std::vector<std::size_t>& paper_size_sweep();

}  // namespace pam
