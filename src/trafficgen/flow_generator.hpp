// Flow-level traffic structure.
//
// Generates the 5-tuples carried by the packet stream: a configurable
// population of flows with Zipf-skewed popularity (a handful of heavy
// hitters plus a long tail — the structure the Monitor NF's Space-Saving
// sketch is built for), deterministic given the seed.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "packet/five_tuple.hpp"

namespace pam {

struct FlowGeneratorConfig {
  std::size_t flow_count = 256;
  double zipf_skew = 1.1;       ///< 0 == uniform popularity
  std::uint32_t client_net = (10u << 24);          ///< 10.0.0.0/8 clients
  std::uint32_t service_ip = (192u << 24) | (0u << 16) | (2u << 8) | 10u;  ///< 192.0.2.10
  std::uint16_t service_port = 443;
  double tcp_fraction = 0.7;    ///< rest UDP
};

class FlowGenerator {
 public:
  explicit FlowGenerator(FlowGeneratorConfig config, std::uint64_t seed);

  /// The tuple for the next packet (samples a flow by popularity).
  [[nodiscard]] const FiveTuple& next(Rng& rng);

  [[nodiscard]] std::size_t flow_count() const noexcept { return flows_.size(); }
  [[nodiscard]] const std::vector<FiveTuple>& flows() const noexcept { return flows_; }

 private:
  FlowGeneratorConfig config_;
  std::vector<FiveTuple> flows_;
};

}  // namespace pam
