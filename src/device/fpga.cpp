#include "device/fpga.hpp"

namespace pam {

using namespace pam::literals;

FpgaSmartNic::FpgaSmartNic(std::string name, std::uint32_t ports, Gbps port_speed,
                           FpgaParams params)
    : Device(std::move(name), Location::kSmartNic),
      ports_(ports),
      port_speed_(port_speed),
      params_(params) {}

FpgaSmartNic FpgaSmartNic::reference_board() {
  return FpgaSmartNic{"fpga-2x10g", 2, 10.0_gbps};
}

SimTime FpgaSmartNic::reconfiguration_time() const noexcept {
  return params_.reconfig_setup +
         serialization_delay(params_.bitstream_size, params_.icap_bandwidth);
}

}  // namespace pam
