#include "device/pcie.hpp"

#include <cassert>

#include "common/strings.hpp"

namespace pam {

using namespace pam::literals;

PcieLink::PcieLink(Gbps bandwidth, SimTime fixed_latency, Gbps host_cost_rate)
    : bandwidth_(bandwidth),
      simple_fixed_latency_(fixed_latency),
      host_cost_rate_(host_cost_rate) {
  assert(bandwidth.value() > 0.0 && host_cost_rate.value() > 0.0);
}

PcieLink PcieLink::calibrated_default() {
  return PcieLink{32.0_gbps, SimTime::microseconds(32.0), 40.0_gbps};
}

void PcieLink::use_simple_model(SimTime fixed_latency) noexcept {
  kind_ = PcieModelKind::kSimple;
  simple_fixed_latency_ = fixed_latency;
}

void PcieLink::use_detailed_model(const PcieDetailedParams& params) noexcept {
  kind_ = PcieModelKind::kDetailed;
  detailed_ = params;
  if (detailed_.batch_size == 0) {
    detailed_.batch_size = 1;
  }
}

SimTime PcieLink::fixed_cost() const noexcept {
  if (kind_ == PcieModelKind::kSimple) {
    return simple_fixed_latency_;
  }
  // Per-frame: descriptor work always; doorbell + interrupt moderation +
  // driver processing amortised over the batch, plus half the batch-fill
  // time is already accounted in interrupt_moderation.
  const double batch = static_cast<double>(detailed_.batch_size);
  const auto amortised =
      SimTime::nanoseconds(static_cast<std::int64_t>(
          static_cast<double>((detailed_.doorbell + detailed_.interrupt_moderation +
                               detailed_.driver_processing)
                                  .ns()) /
          batch));
  return detailed_.dma_descriptor + amortised +
         SimTime::nanoseconds(static_cast<std::int64_t>(
             static_cast<double>(detailed_.interrupt_moderation.ns()) * 0.5));
}

SimTime PcieLink::crossing_latency(Bytes size) const noexcept {
  return fixed_cost() + serialization_delay(size, bandwidth_);
}

std::string PcieLink::describe() const {
  return format("PCIe[%s, fixed=%s, host-cost=%s, model=%s]",
                bandwidth_.to_string().c_str(), fixed_cost().to_string().c_str(),
                host_cost_rate_.to_string().c_str(),
                kind_ == PcieModelKind::kSimple ? "simple" : "detailed");
}

}  // namespace pam
