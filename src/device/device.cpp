#include "device/device.hpp"

#include <algorithm>
#include <limits>

namespace pam {

using namespace pam::literals;

double Device::utilization() const {
  double sum = 0.0;
  for (const auto& r : residents_) {
    sum += r.utilization_on(location_);
  }
  return sum;
}

double Device::utilization_with(const NfSpec& candidate, Gbps offered) const {
  return utilization() + candidate.utilization_at(location_, offered);
}

double Device::utilization_without(const std::string& nf_name) const {
  double sum = 0.0;
  for (const auto& r : residents_) {
    if (r.spec.name != nf_name) {
      sum += r.utilization_on(location_);
    }
  }
  return sum;
}

Gbps Device::headroom_for(const NfSpec& candidate) const {
  const double slack = 1.0 - utilization();
  if (slack <= 0.0) {
    return Gbps::zero();
  }
  const Gbps cap = candidate.capacity.on(location_);
  if (cap.value() <= 0.0 || candidate.load_factor <= 0.0) {
    return Gbps{std::numeric_limits<double>::infinity()};
  }
  // candidate consumes offered*load_factor/cap per Gbps offered.
  return Gbps{slack * cap.value() / candidate.load_factor};
}

SmartNic SmartNic::agilio_cx() {
  return SmartNic{"agilio-cx", 2, 10.0_gbps};
}

CpuSocket CpuSocket::xeon_e5_2620_v2_pair() {
  return CpuSocket{"xeon-e5-2620v2-x2", 12, 2.10};
}

}  // namespace pam
