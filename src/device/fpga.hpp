// FPGA-based SmartNIC model — the poster's final future-work item ("extend
// PAM to work in FPGA-based SmartNICs").
//
// The control-plane difference from an NPU NIC is reconfiguration: placing
// or removing an NF means loading a partial bitstream into one of a fixed
// number of partial-reconfiguration (PR) regions, which costs milliseconds
// (vs. the NPU's microsecond firmware dispatch change) and is serialised by
// the single ICAP configuration port.  PAM's *selection* logic is
// unchanged; what changes is the migration cost model and a slot-count
// feasibility constraint, both modelled here and consumed by the migration
// engine through MigrationCostModel.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "device/device.hpp"

namespace pam {

struct FpgaParams {
  std::uint32_t pr_regions = 8;            ///< concurrent NF slots
  Bytes bitstream_size = Bytes::mib(4);    ///< partial bitstream per NF
  Gbps icap_bandwidth = Gbps{3.2};         ///< configuration port (400 MB/s)
  SimTime reconfig_setup = SimTime::milliseconds(1.0);  ///< driver + DFX handshake
};

class FpgaSmartNic final : public Device {
 public:
  FpgaSmartNic(std::string name, std::uint32_t ports, Gbps port_speed,
               FpgaParams params = {});

  /// A typical 2x10GbE FPGA NIC in the Agilio's class.
  [[nodiscard]] static FpgaSmartNic reference_board();

  [[nodiscard]] std::uint32_t ports() const noexcept { return ports_; }
  [[nodiscard]] Gbps port_speed() const noexcept { return port_speed_; }
  [[nodiscard]] const FpgaParams& params() const noexcept { return params_; }

  /// Time to load one NF's partial bitstream (setup + ICAP transfer).
  [[nodiscard]] SimTime reconfiguration_time() const noexcept;

  /// PR-region accounting: placing an NF occupies one region.
  [[nodiscard]] std::uint32_t regions_in_use() const noexcept {
    return static_cast<std::uint32_t>(residents().size());
  }
  [[nodiscard]] bool has_free_region() const noexcept {
    return regions_in_use() < params_.pr_regions;
  }

 private:
  std::uint32_t ports_;
  Gbps port_speed_;
  FpgaParams params_;
};

/// Migration-cost model: how long the *device-side* (re)configuration of a
/// moved NF takes, on top of state transfer.  NPU NICs dispatch firmware in
/// ~0; FPGA NICs pay a partial reconfiguration.  Consumed by
/// MigrationEngineOptions::device_reconfiguration.
struct MigrationCostModel {
  SimTime smartnic_reconfiguration = SimTime::zero();  ///< NPU default

  [[nodiscard]] static MigrationCostModel npu() noexcept { return {}; }
  [[nodiscard]] static MigrationCostModel fpga(const FpgaSmartNic& nic) noexcept {
    return MigrationCostModel{nic.reconfiguration_time()};
  }
};

}  // namespace pam
