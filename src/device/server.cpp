#include "device/server.hpp"

#include "common/strings.hpp"

namespace pam {

Server Server::paper_testbed() {
  return Server{SmartNic::agilio_cx(), CpuSocket::xeon_e5_2620_v2_pair(),
                PcieLink::calibrated_default()};
}

std::string Server::describe() const {
  return format("Server{nic=%s(%ux%s), cpu=%s(%u cores @ %.2f GHz), %s}",
                nic_.name().c_str(), nic_.ports(),
                nic_.port_speed().to_string().c_str(), cpu_.name().c_str(),
                cpu_.cores(), cpu_.base_ghz(), pcie_.describe().c_str());
}

}  // namespace pam
