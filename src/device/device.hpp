// Device resource model.
//
// The paper models both the SmartNIC and the CPU the same way: a device has
// a normalised resource budget of 1.0, and an NF carrying throughput θ_cur
// consumes θ_cur/θ^D_i of it.  Device tracks which NF instances are resident
// and answers the two questions the PAM algorithm asks:
//   - what is your current utilisation? (Σ θ_cur/θ^D_i)
//   - would you overload if NF b0 moved here? (Eq. 2)

#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "nf/nf_spec.hpp"

namespace pam {

/// One NF instance resident on a device, with the throughput it currently
/// carries (θ_cur in the paper, already scaled by the chain's pass ratios).
struct ResidentNf {
  NfSpec spec;
  Gbps offered;  ///< traffic arriving at this NF

  /// Resource fraction this NF consumes on device `loc`.
  [[nodiscard]] double utilization_on(Location loc) const {
    return spec.utilization_at(loc, offered);
  }
};

class Device {
 public:
  Device(std::string name, Location location)
      : name_(std::move(name)), location_(location) {}
  virtual ~Device() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Location location() const noexcept { return location_; }

  void clear_residents() noexcept { residents_.clear(); }
  void add_resident(ResidentNf nf) { residents_.push_back(std::move(nf)); }
  [[nodiscard]] const std::vector<ResidentNf>& residents() const noexcept { return residents_; }

  /// Σ θ_cur/θ^D_i over resident NFs — the paper's device load.
  [[nodiscard]] double utilization() const;

  /// Device is overloaded when utilisation >= 1 (Eq. 3's negation).
  [[nodiscard]] bool overloaded() const { return utilization() >= 1.0; }

  /// Utilisation if `candidate` carrying `offered` also ran here (Eq. 2's
  /// left-hand side when this device is the CPU).
  [[nodiscard]] double utilization_with(const NfSpec& candidate, Gbps offered) const;

  /// Utilisation if the resident named `nf_name` left (Eq. 3's left-hand
  /// side when this device is the SmartNIC).
  [[nodiscard]] double utilization_without(const std::string& nf_name) const;

  /// Headroom in Gbps for `candidate`: the extra throughput it could carry
  /// here before utilisation reaches 1.
  [[nodiscard]] Gbps headroom_for(const NfSpec& candidate) const;

 private:
  std::string name_;
  Location location_;
  std::vector<ResidentNf> residents_;
};

/// The NPU-based SmartNIC.  Capacity semantics are identical to the base
/// Device; the subclass carries NIC-specific identity (port count/speed)
/// used by examples and reporting.
class SmartNic final : public Device {
 public:
  SmartNic(std::string name, std::uint32_t ports, Gbps port_speed)
      : Device(std::move(name), Location::kSmartNic),
        ports_(ports),
        port_speed_(port_speed) {}

  /// Netronome Agilio CX 2x10GbE — the paper's testbed NIC.
  [[nodiscard]] static SmartNic agilio_cx();

  [[nodiscard]] std::uint32_t ports() const noexcept { return ports_; }
  [[nodiscard]] Gbps port_speed() const noexcept { return port_speed_; }
  [[nodiscard]] Gbps wire_capacity() const noexcept {
    return port_speed_ * static_cast<double>(ports_);
  }

 private:
  std::uint32_t ports_;
  Gbps port_speed_;
};

/// The host CPU complex.
class CpuSocket final : public Device {
 public:
  CpuSocket(std::string name, std::uint32_t cores, double base_ghz)
      : Device(std::move(name), Location::kCpu), cores_(cores), base_ghz_(base_ghz) {}

  /// 2x Intel Xeon E5-2620 v2 (2.10 GHz, 6 physical cores each) — the
  /// paper's testbed host, modelled as one 12-core complex.
  [[nodiscard]] static CpuSocket xeon_e5_2620_v2_pair();

  [[nodiscard]] std::uint32_t cores() const noexcept { return cores_; }
  [[nodiscard]] double base_ghz() const noexcept { return base_ghz_; }

 private:
  std::uint32_t cores_;
  double base_ghz_;
};

}  // namespace pam
