// The server topology: one SmartNIC + one CPU complex joined by PCIe —
// the paper's testbed ("a server equipped with one Netronome Agilio CX
// 2x10GbE SmartNIC, two Intel Xeon E5-2620 v2 CPUs, and 128G RAM").

#pragma once

#include <string>

#include "device/device.hpp"
#include "device/pcie.hpp"

namespace pam {

class Server {
 public:
  Server(SmartNic nic, CpuSocket cpu, PcieLink pcie)
      : nic_(std::move(nic)), cpu_(std::move(cpu)), pcie_(std::move(pcie)) {}

  /// The paper's testbed with the calibrated PCIe link.
  [[nodiscard]] static Server paper_testbed();

  [[nodiscard]] SmartNic& nic() noexcept { return nic_; }
  [[nodiscard]] const SmartNic& nic() const noexcept { return nic_; }
  [[nodiscard]] CpuSocket& cpu() noexcept { return cpu_; }
  [[nodiscard]] const CpuSocket& cpu() const noexcept { return cpu_; }
  [[nodiscard]] PcieLink& pcie() noexcept { return pcie_; }
  [[nodiscard]] const PcieLink& pcie() const noexcept { return pcie_; }

  [[nodiscard]] Device& device(Location loc) noexcept {
    return loc == Location::kSmartNic ? static_cast<Device&>(nic_)
                                      : static_cast<Device&>(cpu_);
  }
  [[nodiscard]] const Device& device(Location loc) const noexcept {
    return loc == Location::kSmartNic ? static_cast<const Device&>(nic_)
                                      : static_cast<const Device&>(cpu_);
  }

  [[nodiscard]] std::string describe() const;

 private:
  SmartNic nic_;
  CpuSocket cpu_;
  PcieLink pcie_;
};

}  // namespace pam
