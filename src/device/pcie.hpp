// PCIe link model between the SmartNIC and the host.
//
// The poster's central observation is that each extra traversal of this link
// costs "tens of microseconds"; its stated future work is to "analyze PCIe
// transmissions in detail".  Both are covered here:
//
//   - kSimple: per-crossing fixed latency + serialisation at link bandwidth.
//   - kDetailed: decomposes the fixed cost into DMA descriptor handling,
//     doorbell/MMIO, interrupt-moderation delay and batching amortisation,
//     so ablation benches can sweep the individual components.
//
// Crossings also consume *host-side* resources (driver rx/tx work); the
// model exposes that as an equivalent-throughput cost which the chain
// analyzer charges to the CPU — this is what makes many-crossing layouts
// lose throughput, matching the paper's Figure 2(b).

#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace pam {

enum class PcieModelKind : std::uint8_t {
  kSimple,
  kDetailed,
};

struct PcieDetailedParams {
  SimTime dma_descriptor = SimTime::microseconds(6.0);   ///< descriptor fetch + writeback
  SimTime doorbell = SimTime::microseconds(2.0);         ///< MMIO write, posted
  SimTime interrupt_moderation = SimTime::microseconds(16.0);  ///< rx coalescing delay
  SimTime driver_processing = SimTime::microseconds(8.0);      ///< softirq/driver work
  std::uint32_t batch_size = 8;  ///< frames amortising one doorbell+interrupt
};

class PcieLink {
 public:
  /// `bandwidth`: usable link bandwidth (PCIe 3.0 x8 ≈ 32 Gbps effective).
  /// `fixed_latency`: per-crossing one-way cost charged per packet (Simple).
  /// `host_cost_rate`: equivalent throughput capacity of host-side
  /// per-crossing driver work; each crossing carrying θ consumes θ/rate of
  /// CPU resource.
  PcieLink(Gbps bandwidth, SimTime fixed_latency, Gbps host_cost_rate);

  /// Calibrated default matching DESIGN.md §6 (32 µs/crossing, 32 Gbps,
  /// host cost 40 Gbps-equivalent).
  [[nodiscard]] static PcieLink calibrated_default();

  [[nodiscard]] Gbps bandwidth() const noexcept { return bandwidth_; }
  [[nodiscard]] Gbps host_cost_rate() const noexcept { return host_cost_rate_; }
  [[nodiscard]] PcieModelKind kind() const noexcept { return kind_; }

  void use_simple_model(SimTime fixed_latency) noexcept;
  void use_detailed_model(const PcieDetailedParams& params) noexcept;
  [[nodiscard]] const PcieDetailedParams& detailed_params() const noexcept { return detailed_; }

  /// One-way latency for a frame of `size`: fixed cost + serialisation.
  [[nodiscard]] SimTime crossing_latency(Bytes size) const noexcept;

  /// The fixed (size-independent) part of crossing_latency.
  [[nodiscard]] SimTime fixed_cost() const noexcept;

  /// CPU resource fraction consumed by crossings carrying `offered`
  /// aggregate throughput (charged once per crossing).
  [[nodiscard]] double host_utilization_per_crossing(Gbps offered) const noexcept {
    return offered.value() / host_cost_rate_.value();
  }

  /// Link utilisation for `offered` aggregate throughput over `crossings`
  /// traversals.
  [[nodiscard]] double link_utilization(Gbps offered, std::uint32_t crossings) const noexcept {
    return offered.value() * static_cast<double>(crossings) / bandwidth_.value();
  }

  // --- runtime counters (filled by the simulator) --------------------------
  void note_crossing(Bytes size) noexcept {
    ++total_crossings_;
    total_bytes_ += size;
  }
  [[nodiscard]] std::uint64_t total_crossings() const noexcept { return total_crossings_; }
  [[nodiscard]] Bytes total_bytes() const noexcept { return total_bytes_; }

  [[nodiscard]] std::string describe() const;

 private:
  Gbps bandwidth_;
  SimTime simple_fixed_latency_;
  Gbps host_cost_rate_;
  PcieModelKind kind_ = PcieModelKind::kSimple;
  PcieDetailedParams detailed_{};
  std::uint64_t total_crossings_ = 0;
  Bytes total_bytes_{0};
};

}  // namespace pam
