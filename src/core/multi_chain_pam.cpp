#include "core/multi_chain_pam.hpp"

#include <limits>
#include <optional>
#include <set>

#include "chain/border.hpp"
#include "common/strings.hpp"

namespace pam {

Deployment MultiChainPlan::apply_to(const Deployment& deployment) const {
  Deployment out = deployment;
  for (const auto& mc_step : steps) {
    auto& deployed = out.at(mc_step.chain_index);
    deployed.chain.set_location(mc_step.step.node_index, mc_step.step.to);
  }
  return out;
}

int MultiChainPlan::total_crossing_delta() const noexcept {
  int total = 0;
  for (const auto& mc_step : steps) {
    total += mc_step.step.crossing_delta;
  }
  return total;
}

MultiChainPlan MultiChainPam::plan(const Deployment& deployment,
                                   const ChainAnalyzer& analyzer) const {
  MultiChainPlan out;
  Deployment work = deployment;
  const double limit = options_.utilization_limit;

  auto util = work.utilization(analyzer);
  out.trace.push_back("initial aggregate " + util.describe());
  if (util.smartnic < limit) {
    out.trace.push_back("SmartNIC below limit; nothing to do");
    return out;
  }

  std::set<std::pair<std::size_t, std::string>> rejected;

  while (out.steps.size() < options_.max_migrations) {
    // Step 1+2 across chains: min theta^S border among non-rejected.
    std::optional<std::pair<std::size_t, std::size_t>> pick;  // (chain, node)
    double best_cap = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < work.size(); ++c) {
      const ServiceChain& chain = work.at(c).chain;
      for (const std::size_t i : find_borders(chain).all()) {
        const auto& spec = chain.node(i).spec;
        if (rejected.contains({c, spec.name})) {
          continue;
        }
        if (spec.capacity.smartnic.value() < best_cap) {
          best_cap = spec.capacity.smartnic.value();
          pick = {c, i};
        }
      }
    }
    if (!pick) {
      out.feasible = false;
      out.infeasibility_reason =
          "no border vNF in any chain can move without overloading the CPU";
      out.trace.push_back("candidates exhausted -> infeasible");
      return out;
    }
    const auto [chain_idx, node_idx] = *pick;
    // Copy identifying fields before `work` is reassigned below.
    const std::string chain_name = work.at(chain_idx).chain.name();
    const NfSpec spec = work.at(chain_idx).chain.node(node_idx).spec;
    out.trace.push_back(format("b0 = %s/%s (theta_S=%s)",
                               chain_name.c_str(), spec.name.c_str(),
                               spec.capacity.smartnic.to_string().c_str()));

    // Step 3 / Eq. 2 on the aggregate.
    Deployment candidate = work;
    const int delta =
        candidate.at(chain_idx).chain.crossing_delta_if_migrated(node_idx);
    candidate.at(chain_idx).chain.set_location(node_idx, Location::kCpu);
    const auto cand_util = candidate.utilization(analyzer);
    if (cand_util.cpu >= limit) {
      out.trace.push_back(format("Eq.2 violated (aggregate CPU %.3f); reject %s/%s",
                                 cand_util.cpu, chain_name.c_str(),
                                 spec.name.c_str()));
      rejected.insert({chain_idx, spec.name});
      continue;
    }

    MultiChainStep mc_step;
    mc_step.chain_index = chain_idx;
    mc_step.step.node_index = node_idx;
    mc_step.step.nf_name = spec.name;
    mc_step.step.from = Location::kSmartNic;
    mc_step.step.to = Location::kCpu;
    mc_step.step.crossing_delta = delta;
    out.steps.push_back(mc_step);
    work = candidate;
    out.trace.push_back(format("migrate %s/%s -> CPU (crossings %+d, now %s)",
                               chain_name.c_str(), spec.name.c_str(), delta,
                               cand_util.describe().c_str()));
    if (cand_util.smartnic < limit) {
      out.trace.push_back("Eq.3 satisfied; terminate");
      return out;
    }
  }

  out.feasible = false;
  out.infeasibility_reason =
      format("exceeded max_migrations=%zu", options_.max_migrations);
  return out;
}

}  // namespace pam
