// The scaling-policy interface shared by PAM and the baselines.

#pragma once

#include <memory>
#include <string>

#include "chain/chain_analyzer.hpp"
#include "core/migration_plan.hpp"

namespace pam {

/// Interface of every migration policy (PAM, the naive baselines, scale-in,
/// "Original").  A policy is a pure decision function from the current
/// placement and offered load to a MigrationPlan; executing the plan is the
/// migration engine's job, and *when* to invoke the policy is the
/// controller's (src/control).  Implementations must be stateless across
/// calls so the same policy object can serve many chains.
class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;

  /// Human-readable policy name used in plans, reports and JSON metrics
  /// (e.g. "PAM", "NaiveBottleneck").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Computes the moves this policy makes when `chain` carries
  /// `ingress_rate`.  Must be pure: no side effects on the chain.  When the
  /// SmartNIC is not overloaded the returned plan is empty.
  [[nodiscard]] virtual MigrationPlan plan(const ServiceChain& chain,
                                           const ChainAnalyzer& analyzer,
                                           Gbps ingress_rate) const = 0;
};

}  // namespace pam
