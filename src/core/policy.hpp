// The scaling-policy interface shared by PAM and the baselines.

#pragma once

#include <memory>
#include <string>

#include "chain/chain_analyzer.hpp"
#include "core/migration_plan.hpp"

namespace pam {

class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Computes the moves this policy makes when `chain` carries
  /// `ingress_rate`.  Must be pure: no side effects on the chain.  When the
  /// SmartNIC is not overloaded the returned plan is empty.
  [[nodiscard]] virtual MigrationPlan plan(const ServiceChain& chain,
                                           const ChainAnalyzer& analyzer,
                                           Gbps ingress_rate) const = 0;
};

}  // namespace pam
