// Baseline migration policies the paper compares against.
//
// The poster describes the "naive solution" in two slightly different ways
// (DESIGN.md §3.3), so both are implemented:
//
//  - NaiveBottleneckPolicy (UNO [4], and the poster's Figure 1(b)):
//    migrate the *bottleneck* vNF — the SmartNIC resident consuming the
//    largest resource share — regardless of its position in the chain.
//    Moving a mid-segment NF adds two PCIe crossings; that is precisely the
//    latency penalty PAM avoids.
//
//  - NaiveMinCapacityPolicy (the poster's §3 wording): migrate the
//    SmartNIC-resident vNF with minimum capacity θ^S.
//
//  - NoMigrationPolicy ("Original"): never migrates; the overloaded
//    configuration the other policies start from.
//
// Both naive variants apply the same CPU-safety check (Eq. 2) and loop
// until the SmartNIC drops below the limit, so the comparison against PAM
// isolates *candidate selection*, not loop mechanics.

#pragma once

#include "core/policy.hpp"

namespace pam {

class NaiveBottleneckPolicy final : public MigrationPolicy {
 public:
  explicit NaiveBottleneckPolicy(double utilization_limit = 1.0)
      : limit_(utilization_limit) {}

  [[nodiscard]] std::string name() const override { return "NaiveBottleneck"; }

  [[nodiscard]] MigrationPlan plan(const ServiceChain& chain,
                                   const ChainAnalyzer& analyzer,
                                   Gbps ingress_rate) const override;

 private:
  double limit_;
};

class NaiveMinCapacityPolicy final : public MigrationPolicy {
 public:
  explicit NaiveMinCapacityPolicy(double utilization_limit = 1.0)
      : limit_(utilization_limit) {}

  [[nodiscard]] std::string name() const override { return "NaiveMinCapacity"; }

  [[nodiscard]] MigrationPlan plan(const ServiceChain& chain,
                                   const ChainAnalyzer& analyzer,
                                   Gbps ingress_rate) const override;

 private:
  double limit_;
};

class NoMigrationPolicy final : public MigrationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "Original"; }

  [[nodiscard]] MigrationPlan plan(const ServiceChain& chain,
                                   const ChainAnalyzer& analyzer,
                                   Gbps ingress_rate) const override;
};

}  // namespace pam
