// Migration plans — the output of a scaling policy.
//
// A plan is an ordered list of single-NF moves between devices, together
// with the policy's full decision trace (which candidates were considered,
// which constraint rejected them).  Plans are pure data: applying one to a
// chain yields a new placement; physically executing one is the migration
// engine's job (src/migration).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/service_chain.hpp"

namespace pam {

struct MigrationStep {
  std::size_t node_index = 0;
  std::string nf_name;
  Location from = Location::kSmartNic;
  Location to = Location::kCpu;
  int crossing_delta = 0;  ///< change in chain PCIe crossings caused by this move
  std::string reason;      ///< why the policy chose this NF
};

struct MigrationPlan {
  std::string policy_name;
  std::vector<MigrationStep> steps;

  /// False when the policy could not alleviate the overload under its
  /// constraints (both devices hot) — the operator must scale out instead
  /// (OpenNF fallback, src/control).
  bool feasible = true;
  std::string infeasibility_reason;

  /// Human-readable decision log, one line per algorithm step.
  std::vector<std::string> trace;

  [[nodiscard]] bool empty() const noexcept { return steps.empty(); }

  /// Returns a copy of `chain` with every step applied.  Throws
  /// std::invalid_argument if a step references a node whose current
  /// location does not match `from` (stale plan).
  [[nodiscard]] ServiceChain apply_to(const ServiceChain& chain) const;

  /// Net change in PCIe crossings across all steps.
  [[nodiscard]] int total_crossing_delta() const noexcept;

  [[nodiscard]] std::string describe() const;
};

}  // namespace pam
