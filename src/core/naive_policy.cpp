#include "core/naive_policy.hpp"

#include <limits>
#include <optional>
#include <unordered_set>

#include "common/strings.hpp"

namespace pam {
namespace {

/// Shared loop for the naive variants: `select` picks the next SmartNIC
/// candidate to migrate from the working chain.
template <typename Selector>
MigrationPlan naive_loop(std::string policy_name, const ServiceChain& chain,
                         const ChainAnalyzer& analyzer, Gbps ingress_rate,
                         double limit, Selector&& select) {
  MigrationPlan out;
  out.policy_name = std::move(policy_name);

  ServiceChain work = chain;
  auto util = analyzer.utilization(work, ingress_rate);
  out.trace.push_back(format("initial %s, crossings=%u",
                             util.describe().c_str(), work.pcie_crossings()));
  if (util.smartnic < limit) {
    out.trace.push_back("SmartNIC below limit; nothing to do");
    return out;
  }

  std::unordered_set<std::string> rejected;
  const std::size_t max_steps = chain.size() + 1;
  while (out.steps.size() < max_steps) {
    const std::optional<std::size_t> pick = select(work, ingress_rate, rejected);
    if (!pick) {
      out.feasible = false;
      out.infeasibility_reason =
          "no SmartNIC vNF can move without overloading the CPU";
      out.trace.push_back("candidates exhausted -> infeasible");
      return out;
    }
    const std::size_t idx = *pick;
    const auto& spec = work.node(idx).spec;

    ServiceChain candidate = work;
    const int delta = candidate.crossing_delta_if_migrated(idx);
    candidate.set_location(idx, Location::kCpu);
    const auto cand_util = analyzer.utilization(candidate, ingress_rate);
    if (cand_util.cpu >= limit) {
      out.trace.push_back(format("Eq.2 violated for %s (CPU would be %.3f); reject",
                                 spec.name.c_str(), cand_util.cpu));
      rejected.insert(spec.name);
      continue;
    }

    MigrationStep step;
    step.node_index = idx;
    step.nf_name = spec.name;
    step.from = Location::kSmartNic;
    step.to = Location::kCpu;
    step.crossing_delta = delta;
    step.reason = "naive candidate";
    out.steps.push_back(step);
    work = candidate;
    out.trace.push_back(format("migrate %s -> CPU (crossings %+d, now %s)",
                               spec.name.c_str(), delta,
                               cand_util.describe().c_str()));
    if (cand_util.smartnic < limit) {
      return out;
    }
  }

  out.feasible = false;
  out.infeasibility_reason = "loop bound exceeded";
  return out;
}

}  // namespace

MigrationPlan NaiveBottleneckPolicy::plan(const ServiceChain& chain,
                                          const ChainAnalyzer& analyzer,
                                          Gbps ingress_rate) const {
  return naive_loop(
      name(), chain, analyzer, ingress_rate, limit_,
      [](const ServiceChain& work, Gbps rate,
         const std::unordered_set<std::string>& rejected)
          -> std::optional<std::size_t> {
        // The bottleneck vNF: largest resource share on the SmartNIC.
        std::optional<std::size_t> best;
        double best_util = -1.0;
        for (std::size_t i = 0; i < work.size(); ++i) {
          const auto& node = work.node(i);
          if (node.location != Location::kSmartNic ||
              rejected.contains(node.spec.name)) {
            continue;
          }
          const double u =
              node.spec.utilization_at(Location::kSmartNic, work.offered_at(i, rate));
          if (u > best_util) {
            best_util = u;
            best = i;
          }
        }
        return best;
      });
}

MigrationPlan NaiveMinCapacityPolicy::plan(const ServiceChain& chain,
                                           const ChainAnalyzer& analyzer,
                                           Gbps ingress_rate) const {
  return naive_loop(
      name(), chain, analyzer, ingress_rate, limit_,
      [](const ServiceChain& work, Gbps /*rate*/,
         const std::unordered_set<std::string>& rejected)
          -> std::optional<std::size_t> {
        // θ^S-minimal vNF on the SmartNIC (the poster's §3 wording).
        std::optional<std::size_t> best;
        double best_cap = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < work.size(); ++i) {
          const auto& node = work.node(i);
          if (node.location != Location::kSmartNic ||
              rejected.contains(node.spec.name)) {
            continue;
          }
          const double cap = node.spec.capacity.smartnic.value();
          if (cap < best_cap) {
            best_cap = cap;
            best = i;
          }
        }
        return best;
      });
}

MigrationPlan NoMigrationPolicy::plan(const ServiceChain& chain,
                                      const ChainAnalyzer& analyzer,
                                      Gbps ingress_rate) const {
  MigrationPlan out;
  out.policy_name = name();
  out.trace.push_back("original placement kept: " +
                      analyzer.utilization(chain, ingress_rate).describe());
  return out;
}

}  // namespace pam
