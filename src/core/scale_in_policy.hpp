// Scale-in: PAM run in reverse.
//
// After a traffic spike subsides, vNFs pushed to the CPU should return to
// the SmartNIC — that is where they are cheapest in latency (no per-hop
// virtualisation tax) and it frees the CPU for applications.  The selection
// mirrors PAM's logic with the roles swapped:
//
//   Step 1  Candidates are CPU-resident NFs whose migration back to the
//           SmartNIC does not increase PCIe crossings (the "reverse
//           borders": CPU NFs with at least one SmartNIC-side neighbour).
//   Step 2  Among them pick the NF with *maximum* CPU resource share —
//           returning it frees the most CPU.
//   Step 3  Check the SmartNIC stays below the limit with the NF back
//           (Eq. 3 mirrored); loop while any candidate fits.
//
// Together with PamPolicy this gives the controller a bidirectional
// placement loop: push aside on overload, pull back on calm.

#pragma once

#include "core/policy.hpp"

namespace pam {

struct ScaleInOptions {
  /// Target ceiling for the SmartNIC after pulling an NF back.  Lower than
  /// 1.0 so a small fluctuation does not immediately re-trigger PAM
  /// (hysteresis against migration ping-pong).
  double smartnic_ceiling = 0.8;

  std::size_t max_migrations = 64;
};

class ScaleInPolicy final : public MigrationPolicy {
 public:
  explicit ScaleInPolicy(ScaleInOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "PAM-ScaleIn"; }

  [[nodiscard]] MigrationPlan plan(const ServiceChain& chain,
                                   const ChainAnalyzer& analyzer,
                                   Gbps ingress_rate) const override;

 private:
  ScaleInOptions options_;
};

}  // namespace pam
