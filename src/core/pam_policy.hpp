// PAM — Push Aside Migration (the paper's contribution, §2).
//
// When the SmartNIC is overloaded, PAM does NOT migrate the overloaded vNF.
// Instead it migrates *border* vNFs — SmartNIC NFs adjacent to a CPU-side
// hop — because moving those never adds PCIe crossings:
//
//   Step 1  Identify border vNFs (BL: upstream on CPU, BR: downstream on
//           CPU; virtual ingress/egress endpoints count — see border.hpp).
//   Step 2  Among the remaining border candidates, select b0 with minimum
//           SmartNIC capacity θ^S (frees the most fractional SmartNIC
//           resource per migrated NF).
//   Step 3  Check constraint (1) — Eq. 2: the CPU, with b0 added, stays
//           below 1.0 utilisation.  If violated, discard b0 as a candidate
//           and return to Step 2.  Check constraint (2) — Eq. 3: the
//           SmartNIC without b0 drops below 1.0.  Migrate b0; if Eq. 3
//           held, terminate, otherwise expand the border inward (the
//           migrated NF's SmartNIC-side neighbour becomes a border) and
//           return to Step 2.
//
// If candidates run out while the SmartNIC is still hot, both devices are
// effectively overloaded and the plan is reported infeasible — the operator
// must start another instance (OpenNF-style scale-out, src/control).

#pragma once

#include "core/policy.hpp"

namespace pam {

/// Tunables of the PAM selection loop.  The defaults reproduce the paper.
struct PamOptions {
  /// Target utilisation treated as "full" in Eq. 2/3.  1.0 matches the
  /// paper; operators may leave headroom (e.g. 0.9).
  double utilization_limit = 1.0;

  /// Safety bound on migrations per invocation (the loop is provably finite
  /// anyway; this catches misconfigured chains in release builds).
  std::size_t max_migrations = 64;
};

/// The paper's Push Aside Migration policy: relieve an overloaded SmartNIC
/// by migrating *border* vNFs (never the bottleneck itself), so that no
/// migration ever adds a PCIe crossing.  See the file comment for the
/// three-step algorithm this implements.
class PamPolicy final : public MigrationPolicy {
 public:
  /// Constructs the policy; `options` defaults reproduce the paper.
  explicit PamPolicy(PamOptions options = {}) : options_(options) {}

  /// Returns "PAM".
  [[nodiscard]] std::string name() const override { return "PAM"; }

  /// Runs Steps 1-3 against `chain` at `ingress_rate`.  The returned plan
  /// carries a full decision trace (borders considered, constraints that
  /// rejected candidates); it is empty when the SmartNIC is not overloaded
  /// and infeasible when candidates run out while both devices stay hot.
  [[nodiscard]] MigrationPlan plan(const ServiceChain& chain,
                                   const ChainAnalyzer& analyzer,
                                   Gbps ingress_rate) const override;

  /// The options this policy was constructed with.
  [[nodiscard]] const PamOptions& options() const noexcept { return options_; }

 private:
  PamOptions options_;
};

}  // namespace pam
