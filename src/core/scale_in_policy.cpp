#include "core/scale_in_policy.hpp"

#include <optional>
#include <unordered_set>

#include "common/strings.hpp"

namespace pam {
namespace {

/// CPU-resident NFs whose return to the SmartNIC cannot add crossings.
bool is_reverse_border(const ServiceChain& chain, std::size_t i) {
  if (chain.location_of(i) != Location::kCpu) {
    return false;
  }
  return chain.upstream_side(i) == Location::kSmartNic ||
         chain.downstream_side(i) == Location::kSmartNic;
}

}  // namespace

MigrationPlan ScaleInPolicy::plan(const ServiceChain& chain,
                                  const ChainAnalyzer& analyzer,
                                  Gbps ingress_rate) const {
  MigrationPlan out;
  out.policy_name = name();

  ServiceChain work = chain;
  auto util = analyzer.utilization(work, ingress_rate);
  out.trace.push_back("initial " + util.describe());

  std::unordered_set<std::string> rejected;

  while (out.steps.size() < options_.max_migrations) {
    // Step 1+2: the reverse border with the largest CPU share.
    std::optional<std::size_t> pick;
    double best_share = -1.0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!is_reverse_border(work, i) || rejected.contains(work.node(i).spec.name)) {
        continue;
      }
      const double share = work.node(i).spec.utilization_at(
          Location::kCpu, work.offered_at(i, ingress_rate));
      if (share > best_share) {
        best_share = share;
        pick = i;
      }
    }
    if (!pick) {
      out.trace.push_back("no further candidate fits; done");
      return out;
    }
    const std::size_t idx = *pick;
    const NfSpec spec = work.node(idx).spec;

    // Step 3 (mirrored Eq. 3): the SmartNIC with the NF back must stay
    // below the ceiling.
    ServiceChain candidate = work;
    const int delta = candidate.crossing_delta_if_migrated(idx);
    candidate.set_location(idx, Location::kSmartNic);
    const auto cand_util = analyzer.utilization(candidate, ingress_rate);
    if (cand_util.smartnic >= options_.smartnic_ceiling) {
      out.trace.push_back(format(
          "SmartNIC would reach %.3f >= %.2f; reject %s", cand_util.smartnic,
          options_.smartnic_ceiling, spec.name.c_str()));
      rejected.insert(spec.name);
      continue;
    }

    MigrationStep step;
    step.node_index = idx;
    step.nf_name = spec.name;
    step.from = Location::kCpu;
    step.to = Location::kSmartNic;
    step.crossing_delta = delta;
    step.reason = format("reverse border freeing %.3f CPU share", best_share);
    out.steps.push_back(step);
    work = candidate;
    out.trace.push_back(format("return %s -> SmartNIC (crossings %+d, now %s)",
                               spec.name.c_str(), delta,
                               cand_util.describe().c_str()));
  }
  return out;
}

}  // namespace pam
