#include "core/migration_plan.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace pam {

ServiceChain MigrationPlan::apply_to(const ServiceChain& chain) const {
  ServiceChain out = chain;
  for (const auto& step : steps) {
    if (step.node_index >= out.size()) {
      throw std::invalid_argument(
          format("plan step references node %zu beyond chain size %zu",
                 step.node_index, out.size()));
    }
    if (out.location_of(step.node_index) != step.from) {
      throw std::invalid_argument(
          format("plan step for '%s' expects location %s but chain has %s",
                 step.nf_name.c_str(),
                 std::string(to_string(step.from)).c_str(),
                 std::string(to_string(out.location_of(step.node_index))).c_str()));
    }
    out.set_location(step.node_index, step.to);
  }
  return out;
}

int MigrationPlan::total_crossing_delta() const noexcept {
  int total = 0;
  for (const auto& step : steps) {
    total += step.crossing_delta;
  }
  return total;
}

std::string MigrationPlan::describe() const {
  std::string out = format("%s plan: ", policy_name.c_str());
  if (!feasible) {
    out += "INFEASIBLE (" + infeasibility_reason + ")";
    return out;
  }
  if (steps.empty()) {
    out += "no migration needed";
    return out;
  }
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const auto& s = steps[i];
    out += format("%s%s %s->%s (crossings %+d)", i ? ", " : "",
                  s.nf_name.c_str(), std::string(to_string(s.from)).c_str(),
                  std::string(to_string(s.to)).c_str(), s.crossing_delta);
  }
  return out;
}

}  // namespace pam
