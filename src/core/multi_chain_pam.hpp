// PAM generalised to multi-chain deployments (the poster's "extend PAM"
// future work).
//
// With several chains sharing one SmartNIC, the overload is a property of
// the aggregate, but the crossing-safety argument is per-chain: a border
// vNF of *any* chain can migrate without adding crossings to *its* chain
// (and other chains are untouched).  The algorithm is therefore the same
// three steps with the candidate set being the union of all chains' border
// sets, Eq. 2/3 evaluated on aggregate utilisation.

#pragma once

#include <string>
#include <vector>

#include "chain/deployment.hpp"
#include "core/migration_plan.hpp"

namespace pam {

/// One selected move: which chain, which node.
struct MultiChainStep {
  std::size_t chain_index = 0;
  MigrationStep step;
};

struct MultiChainPlan {
  std::vector<MultiChainStep> steps;
  bool feasible = true;
  std::string infeasibility_reason;
  std::vector<std::string> trace;

  [[nodiscard]] bool empty() const noexcept { return steps.empty(); }

  /// Applies all steps, returning the migrated deployment.
  [[nodiscard]] Deployment apply_to(const Deployment& deployment) const;

  /// Net crossing change summed over all affected chains.
  [[nodiscard]] int total_crossing_delta() const noexcept;
};

struct MultiChainPamOptions {
  double utilization_limit = 1.0;
  std::size_t max_migrations = 128;
};

class MultiChainPam {
 public:
  explicit MultiChainPam(MultiChainPamOptions options = {}) : options_(options) {}

  [[nodiscard]] MultiChainPlan plan(const Deployment& deployment,
                                    const ChainAnalyzer& analyzer) const;

 private:
  MultiChainPamOptions options_;
};

}  // namespace pam
