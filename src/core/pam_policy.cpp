#include "core/pam_policy.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "chain/border.hpp"
#include "common/strings.hpp"

namespace pam {

MigrationPlan PamPolicy::plan(const ServiceChain& chain,
                              const ChainAnalyzer& analyzer,
                              Gbps ingress_rate) const {
  MigrationPlan out;
  out.policy_name = name();

  ServiceChain work = chain;
  const double limit = options_.utilization_limit;

  auto util = analyzer.utilization(work, ingress_rate);
  out.trace.push_back(format("initial %s, crossings=%u",
                             util.describe().c_str(), work.pcie_crossings()));
  if (util.smartnic < limit) {
    out.trace.push_back("SmartNIC below limit; nothing to do");
    return out;
  }

  // NFs rejected by the Eq. 2 (CPU-safety) check.  The paper removes them
  // from BL/BR and never reconsiders: CPU utilisation only grows as the
  // loop migrates more NFs, so a rejected candidate can never become
  // feasible later.
  std::unordered_set<std::string> rejected;

  while (out.steps.size() < options_.max_migrations) {
    // Step 1: (re-)identify borders on the working placement.
    const BorderSets borders = find_borders(work);
    out.trace.push_back("borders: " + borders.describe(work));

    // Step 2: b0 = argmin_{b in BL ∪ BR} θ^S_b among non-rejected.
    std::optional<std::size_t> b0;
    double best_cap = std::numeric_limits<double>::infinity();
    for (const std::size_t i : borders.all()) {
      const auto& spec = work.node(i).spec;
      if (rejected.contains(spec.name)) {
        continue;
      }
      const double cap = spec.capacity.smartnic.value();
      if (cap < best_cap) {
        best_cap = cap;
        b0 = i;
      }
    }
    if (!b0) {
      out.feasible = false;
      out.infeasibility_reason =
          "no border vNF can move without overloading the CPU — "
          "both devices hot; scale out another instance";
      out.trace.push_back("candidates exhausted -> infeasible");
      return out;
    }

    const std::size_t idx = *b0;
    const auto& spec = work.node(idx).spec;
    out.trace.push_back(format("step 2: b0=%s (theta_S=%s, min among borders)",
                               spec.name.c_str(),
                               spec.capacity.smartnic.to_string().c_str()));

    // Step 3, constraint (1) — Eq. 2: CPU with b0 must stay below limit.
    ServiceChain candidate = work;
    const int delta = candidate.crossing_delta_if_migrated(idx);
    candidate.set_location(idx, Location::kCpu);
    const auto cand_util = analyzer.utilization(candidate, ingress_rate);
    if (cand_util.cpu >= limit) {
      out.trace.push_back(format(
          "step 3: Eq.2 violated (CPU would be %.3f >= %.2f); reject %s",
          cand_util.cpu, limit, spec.name.c_str()));
      rejected.insert(spec.name);
      continue;  // back to Step 2 with b0 removed
    }

    // Migrate b0.
    MigrationStep step;
    step.node_index = idx;
    step.nf_name = spec.name;
    step.from = Location::kSmartNic;
    step.to = Location::kCpu;
    step.crossing_delta = delta;
    step.reason = format("border vNF with min theta_S=%s",
                         spec.capacity.smartnic.to_string().c_str());
    out.steps.push_back(step);
    work = candidate;
    out.trace.push_back(format("migrate %s -> CPU (crossings %+d, now %s)",
                               spec.name.c_str(), delta,
                               cand_util.describe().c_str()));

    // Step 3, constraint (2) — Eq. 3: terminate once the SmartNIC (without
    // the NFs migrated so far) is below the limit.
    if (cand_util.smartnic < limit) {
      out.trace.push_back(format("Eq.3 satisfied (S=%.3f < %.2f); terminate",
                                 cand_util.smartnic, limit));
      return out;
    }
    // Otherwise the border expands inward automatically: find_borders on
    // the updated placement discovers b0's former SmartNIC neighbour.
  }

  out.feasible = false;
  out.infeasibility_reason =
      format("exceeded max_migrations=%zu without alleviating the hot spot",
             options_.max_migrations);
  return out;
}

}  // namespace pam
