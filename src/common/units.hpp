// Strong unit types used throughout the library.
//
// The PAM paper reasons about vNF capacities in Gbps, packet sizes in bytes
// and latencies in (tens of) microseconds.  Mixing those up silently is the
// classic NFV-simulator bug, so all quantities cross module boundaries as
// strong types with explicit conversions.

#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <string>

namespace pam {

/// Simulated time.  One tick == one nanosecond.  A dedicated type (rather
/// than a raw std::chrono::nanoseconds) so it can carry simulation-specific
/// helpers and formatting.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(std::int64_t nanos) noexcept : ns_(nanos) {}

  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t v) noexcept { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime microseconds(double v) noexcept {
    return SimTime{static_cast<std::int64_t>(v * 1e3)};
  }
  [[nodiscard]] static constexpr SimTime milliseconds(double v) noexcept {
    return SimTime{static_cast<std::int64_t>(v * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime seconds(double v) noexcept {
    return SimTime{static_cast<std::int64_t>(v * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double us() const noexcept { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const noexcept { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const noexcept { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime& operator+=(SimTime o) noexcept { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) noexcept { ns_ -= o.ns_; return *this; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept { return SimTime{a.ns_ + b.ns_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept { return SimTime{a.ns_ - b.ns_}; }
  friend constexpr SimTime operator*(SimTime a, double k) noexcept {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr SimTime operator*(double k, SimTime a) noexcept { return a * k; }
  friend constexpr double operator/(SimTime a, SimTime b) noexcept {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  /// Human-readable rendering with an adaptive unit, e.g. "312.4 us".
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// Throughput / capacity in gigabits per second.  The paper's Table 1 uses
/// Gbps for every vNF capacity, so this is the library's canonical rate unit.
class Gbps {
 public:
  constexpr Gbps() noexcept = default;
  constexpr explicit Gbps(double v) noexcept : v_(v) {}

  [[nodiscard]] static constexpr Gbps zero() noexcept { return Gbps{0.0}; }
  [[nodiscard]] static constexpr Gbps from_mbps(double mbps) noexcept { return Gbps{mbps / 1e3}; }
  [[nodiscard]] static constexpr Gbps from_bits_per_sec(double bps) noexcept { return Gbps{bps / 1e9}; }

  [[nodiscard]] constexpr double value() const noexcept { return v_; }
  [[nodiscard]] constexpr double mbps() const noexcept { return v_ * 1e3; }
  [[nodiscard]] constexpr double bits_per_sec() const noexcept { return v_ * 1e9; }

  constexpr auto operator<=>(const Gbps&) const noexcept = default;

  friend constexpr Gbps operator+(Gbps a, Gbps b) noexcept { return Gbps{a.v_ + b.v_}; }
  friend constexpr Gbps operator-(Gbps a, Gbps b) noexcept { return Gbps{a.v_ - b.v_}; }
  friend constexpr Gbps operator*(Gbps a, double k) noexcept { return Gbps{a.v_ * k}; }
  friend constexpr Gbps operator*(double k, Gbps a) noexcept { return a * k; }
  friend constexpr Gbps operator/(Gbps a, double k) noexcept { return Gbps{a.v_ / k}; }
  friend constexpr double operator/(Gbps a, Gbps b) noexcept { return a.v_ / b.v_; }

  constexpr Gbps& operator+=(Gbps o) noexcept { v_ += o.v_; return *this; }
  constexpr Gbps& operator-=(Gbps o) noexcept { v_ -= o.v_; return *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  double v_ = 0.0;
};

/// Byte count (packet sizes, state sizes, transfer volumes).
class Bytes {
 public:
  constexpr Bytes() noexcept = default;
  constexpr explicit Bytes(std::uint64_t v) noexcept : v_(v) {}

  [[nodiscard]] static constexpr Bytes kib(std::uint64_t v) noexcept { return Bytes{v * 1024ull}; }
  [[nodiscard]] static constexpr Bytes mib(std::uint64_t v) noexcept { return Bytes{v * 1024ull * 1024ull}; }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return v_; }
  [[nodiscard]] constexpr double bits() const noexcept { return static_cast<double>(v_) * 8.0; }

  constexpr auto operator<=>(const Bytes&) const noexcept = default;

  friend constexpr Bytes operator+(Bytes a, Bytes b) noexcept { return Bytes{a.v_ + b.v_}; }
  constexpr Bytes& operator+=(Bytes o) noexcept { v_ += o.v_; return *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  std::uint64_t v_ = 0;
};

/// Time to push `size` onto a link/device running at `rate` (pure
/// serialisation delay, no queueing).  Returns SimTime::zero() for a zero
/// rate guard is the caller's job; rate must be > 0.
[[nodiscard]] SimTime serialization_delay(Bytes size, Gbps rate);

/// Rate achieved by moving `size` in `elapsed` time.
[[nodiscard]] Gbps rate_of(Bytes size, SimTime elapsed);

namespace literals {
constexpr Gbps operator""_gbps(long double v) { return Gbps{static_cast<double>(v)}; }
constexpr Gbps operator""_gbps(unsigned long long v) { return Gbps{static_cast<double>(v)}; }
constexpr Bytes operator""_bytes(unsigned long long v) { return Bytes{v}; }
constexpr SimTime operator""_ns(unsigned long long v) { return SimTime::nanoseconds(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_us(long double v) { return SimTime::microseconds(static_cast<double>(v)); }
constexpr SimTime operator""_us(unsigned long long v) { return SimTime::microseconds(static_cast<double>(v)); }
constexpr SimTime operator""_ms(long double v) { return SimTime::milliseconds(static_cast<double>(v)); }
constexpr SimTime operator""_ms(unsigned long long v) { return SimTime::milliseconds(static_cast<double>(v)); }
constexpr SimTime operator""_s(long double v) { return SimTime::seconds(static_cast<double>(v)); }
constexpr SimTime operator""_s(unsigned long long v) { return SimTime::seconds(static_cast<double>(v)); }
}  // namespace literals

}  // namespace pam
