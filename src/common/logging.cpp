#include "common/logging.hpp"

#include <cstdio>
#include <vector>

namespace pam {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() { reset_sink(); }

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::reset_sink() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(to_string(level).size()), to_string(level).data(),
                 static_cast<int>(message.size()), message.data());
  };
}

void Logger::vlogf(LogLevel level, const char* format, std::va_list args) {
  if (!enabled(level)) {
    return;
  }
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, copy);
  va_end(copy);
  if (needed < 0) {
    return;
  }
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), format, args);
  sink_(level, std::string_view{buf.data(), static_cast<std::size_t>(needed)});
}

void Logger::logf(LogLevel level, const char* format, ...) {
  std::va_list args;
  va_start(args, format);
  vlogf(level, format, args);
  va_end(args);
}

#define PAM_DEFINE_LOG_FN(name, level)                  \
  void name(const char* format, ...) {                  \
    std::va_list args;                                  \
    va_start(args, format);                             \
    Logger::instance().vlogf(level, format, args);      \
    va_end(args);                                       \
  }

PAM_DEFINE_LOG_FN(log_trace, LogLevel::kTrace)
PAM_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
PAM_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
PAM_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
PAM_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef PAM_DEFINE_LOG_FN

}  // namespace pam
