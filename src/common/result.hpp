// A tiny Result<T, E> (the library targets toolchains where std::expected is
// not yet reliably available).  Used for fallible operations whose failure is
// part of normal control flow — e.g. "the PAM loop could not alleviate the
// hot spot" — where exceptions would be the wrong tool.

#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace pam {

/// Default error payload: a machine-readable code plus human-readable detail.
struct Error {
  std::string message;

  [[nodiscard]] const std::string& what() const noexcept { return message; }
};

template <typename T, typename E = Error>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(E error) : storage_(std::in_place_index<1>, std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Result ok(T value) { return Result{std::move(value)}; }
  [[nodiscard]] static Result err(E error) { return Result{std::move(error)}; }

  [[nodiscard]] bool has_value() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const E& error() const& {
    assert(!has_value());
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<0>(storage_) : std::move(fallback);
  }

  template <typename F>
  [[nodiscard]] auto map(F&& f) const -> Result<decltype(f(std::declval<const T&>())), E> {
    if (has_value()) {
      return f(value());
    }
    return error();
  }

 private:
  std::variant<T, E> storage_;
};

}  // namespace pam
