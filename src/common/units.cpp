#include "common/units.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace pam {

std::string SimTime::to_string() const {
  char buf[64];
  const double abs_ns = std::fabs(static_cast<double>(ns_));
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns_));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", us());
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ms());
  } else {
    std::snprintf(buf, sizeof buf, "%.4f s", sec());
  }
  return buf;
}

std::string Gbps::to_string() const {
  char buf[64];
  if (std::fabs(v_) < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f Mbps", mbps());
  } else {
    std::snprintf(buf, sizeof buf, "%.3f Gbps", v_);
  }
  return buf;
}

std::string Bytes::to_string() const {
  char buf[64];
  if (v_ < 1024) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(v_));
  } else if (v_ < 1024ull * 1024ull) {
    std::snprintf(buf, sizeof buf, "%.2f KiB", static_cast<double>(v_) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f MiB", static_cast<double>(v_) / (1024.0 * 1024.0));
  }
  return buf;
}

SimTime serialization_delay(Bytes size, Gbps rate) {
  assert(rate.value() > 0.0 && "serialization_delay requires a positive rate");
  const double seconds = size.bits() / rate.bits_per_sec();
  return SimTime::seconds(seconds);
}

Gbps rate_of(Bytes size, SimTime elapsed) {
  if (elapsed <= SimTime::zero()) {
    return Gbps::zero();
  }
  return Gbps::from_bits_per_sec(size.bits() / elapsed.sec());
}

}  // namespace pam
