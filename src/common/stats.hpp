// Streaming statistics used by the measurement layer: running moments,
// exact-quantile reservoirs for latency distributions, and fixed-bucket
// histograms for throughput-over-time reporting.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace pam {

/// Welford running mean/variance with min/max.  O(1) per sample.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;   ///< population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile estimator.  Keeps all samples up to `capacity`, then switches to
/// uniform reservoir sampling — exact quantiles for typical measurement runs,
/// bounded memory for very long ones.  Deterministic given the seed.
class QuantileReservoir {
 public:
  explicit QuantileReservoir(std::size_t capacity = 1 << 16, std::uint64_t seed = 42);

  void add(double x);

  /// Folds `other`'s retained samples into this reservoir (deterministic:
  /// samples are replayed through add() in insertion order).  Once either
  /// side has overflowed its capacity the merged quantiles are an
  /// approximation over the union, as with any reservoir.
  void merge(const QuantileReservoir& other);

  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

  /// q in [0, 1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

 private:
  std::size_t capacity_;
  std::uint64_t rng_state_;
  std::size_t total_ = 0;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = true;
};

/// Latency recorder combining moments + quantiles, in SimTime.
class LatencyRecorder {
 public:
  void record(SimTime latency);
  /// Folds another recorder in (fleet-level aggregation across chains):
  /// moments merge exactly, quantiles via QuantileReservoir::merge.
  void merge(const LatencyRecorder& other);
  [[nodiscard]] std::size_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] SimTime mean() const { return SimTime::nanoseconds(static_cast<std::int64_t>(stats_.mean())); }
  [[nodiscard]] SimTime min() const { return SimTime::nanoseconds(static_cast<std::int64_t>(stats_.min())); }
  [[nodiscard]] SimTime max() const { return SimTime::nanoseconds(static_cast<std::int64_t>(stats_.max())); }
  [[nodiscard]] SimTime quantile(double q) const {
    return SimTime::nanoseconds(static_cast<std::int64_t>(reservoir_.quantile(q)));
  }
  [[nodiscard]] std::string summary() const;

 private:
  RunningStats stats_;
  QuantileReservoir reservoir_;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples land in
/// underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;

  /// ASCII rendering for example programs.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Windowed rate meter: count bytes over time, report Gbps per window and
/// overall.  Used by sinks to report achieved throughput.
class ThroughputMeter {
 public:
  explicit ThroughputMeter(SimTime window = SimTime::milliseconds(10));

  void record(SimTime now, Bytes size);
  [[nodiscard]] Bytes total_bytes() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t total_packets() const noexcept { return packets_; }

  /// Average rate between the first and last recorded packet.
  [[nodiscard]] Gbps average_rate() const;

  /// Per-window rates (for time-series plots in examples).
  [[nodiscard]] const std::vector<Gbps>& window_rates() const noexcept { return window_rates_; }

 private:
  void roll_to(SimTime now);

  SimTime window_;
  Bytes total_{0};
  std::uint64_t packets_ = 0;
  SimTime first_ = SimTime::zero();
  SimTime last_ = SimTime::zero();
  bool any_ = false;
  SimTime window_start_ = SimTime::zero();
  Bytes window_bytes_{0};
  std::vector<Gbps> window_rates_;
};

}  // namespace pam
