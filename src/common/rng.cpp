#include "common/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pam {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // All-zero state is the one invalid xoshiro state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::bounded(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) {
    return next_u64();
  }
  return lo + bounded(span + 1);
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  double u = next_double();
  // Guard the log(0) corner.
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

bool Rng::chance(double probability) noexcept {
  return next_double() < probability;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::pareto(double xm, double alpha) noexcept {
  assert(xm > 0.0 && alpha > 0.0);
  double u = next_double();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  assert(n > 0);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double cum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = cum;
    }
    for (auto& x : zipf_cdf_) {
      x /= cum;
    }
  }
  const double u = next_double();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::size_t>(it - zipf_cdf_.begin());
}

Rng Rng::split() noexcept {
  return Rng{next_u64() ^ 0xd1b54a32d192ed03ull};
}

std::uint64_t Rng::derive(std::uint64_t base, std::uint64_t stream) noexcept {
  // Two splitmix64 rounds decorrelate adjacent (base, stream) pairs.
  std::uint64_t sm = base ^ (0x9e3779b97f4a7c15ull * (stream + 1));
  (void)splitmix64(sm);
  return splitmix64(sm);
}

}  // namespace pam
