#include "common/json_writer.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace pam {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    out_ << "  ";
  }
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": on the same line
  }
  if (!stack_.empty()) {
    if (has_element_.back() == '1') {
      out_ << ",";
    }
    has_element_.back() = '1';
    out_ << "\n";
    indent();
  }
}

void JsonWriter::begin_object() {
  separate();
  out_ << "{";
  stack_ += 'o';
  has_element_ += '0';
}

void JsonWriter::end_object() {
  const bool had = has_element_.back() == '1';
  stack_.pop_back();
  has_element_.pop_back();
  if (had) {
    out_ << "\n";
    indent();
  }
  out_ << "}";
  if (stack_.empty()) {
    out_ << "\n";
  }
}

void JsonWriter::begin_array() {
  separate();
  out_ << "[";
  stack_ += 'a';
  has_element_ += '0';
}

void JsonWriter::end_array() {
  const bool had = has_element_.back() == '1';
  stack_.pop_back();
  has_element_.pop_back();
  if (had) {
    out_ << "\n";
    indent();
  }
  out_ << "]";
}

void JsonWriter::key(std::string_view k) {
  separate();
  out_ << "\"" << json_escape(k) << "\": ";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  separate();
  out_ << "\"" << json_escape(v) << "\"";
}

void JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    out_ << "null";
    return;
  }
  out_ << format("%.10g", v);
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ << format("%llu", static_cast<unsigned long long>(v));
}

void JsonWriter::value(std::int64_t v) {
  separate();
  out_ << format("%lld", static_cast<long long>(v));
}

void JsonWriter::value(bool v) {
  separate();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  separate();
  out_ << "null";
}

}  // namespace pam
