// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, but examples and the
// controller want human-readable narration.  Output goes to a pluggable sink
// so tests can capture it.  Formatting uses printf-style because the library
// must build offline without fmt.

#pragma once

#include <cstdarg>
#include <functional>
#include <string>
#include <string_view>

namespace pam {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Process-wide logger configuration.  Not thread-safe by design (the
/// simulator is single-threaded); guard externally if ever used from threads.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  [[nodiscard]] static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  /// Replace the output sink (default writes "[LEVEL] message\n" to stderr).
  void set_sink(Sink sink);
  void reset_sink();

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void logf(LogLevel level, const char* format, ...) __attribute__((format(printf, 3, 4)));
  void vlogf(LogLevel level, const char* format, std::va_list args);

 private:
  Logger();

  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

// Convenience free functions: pam::log_info("rate %.2f", x);
void log_trace(const char* format, ...) __attribute__((format(printf, 1, 2)));
void log_debug(const char* format, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* format, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* format, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pam
