// Fixed-capacity ring buffer, used for the Logger NF's record ring and the
// migration engine's in-flight packet buffer.  Overwrites the oldest element
// when full (the behaviour a packet logger wants) unless the caller uses
// try_push.

#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace pam {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    assert(capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }

  /// Push, overwriting the oldest element when full.  Returns true when an
  /// element was overwritten.
  bool push_overwrite(T value) {
    const bool overwrote = full();
    buf_[head_] = std::move(value);
    head_ = next(head_);
    if (overwrote) {
      tail_ = next(tail_);
    } else {
      ++size_;
    }
    return overwrote;
  }

  /// Push only when space is available.
  [[nodiscard]] bool try_push(T value) {
    if (full()) {
      return false;
    }
    push_overwrite(std::move(value));
    return true;
  }

  [[nodiscard]] std::optional<T> pop() {
    if (empty()) {
      return std::nullopt;
    }
    T out = std::move(buf_[tail_]);
    tail_ = next(tail_);
    --size_;
    return out;
  }

  /// Oldest-first access without consuming, index 0 == oldest.
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return buf_[(tail_ + i) % buf_.size()];
  }

  void clear() noexcept {
    head_ = tail_ = size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) % buf_.size();
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;  // next write position
  std::size_t tail_ = 0;  // oldest element
  std::size_t size_ = 0;
};

}  // namespace pam
