// Minimal streaming JSON writer shared by every machine-readable emitter
// in the tree (experiment MetricsSink, benchreport BenchReporter).
//
// Lives in common/ so low layers can emit JSON without depending on the
// experiment subsystem; the schema each emitter produces is documented next
// to that emitter (docs/REPRODUCING.md, docs/BENCHMARKS.md).

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace pam {

/// Minimal streaming JSON writer: correct escaping, 2-space pretty
/// printing, commas managed by the writer.  Nesting is the caller's
/// responsibility (begin/end calls must balance).
class JsonWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  /// Opens `{`; close with the matching end_object().
  void begin_object();
  /// Closes the innermost object.
  void end_object();
  /// Opens `[`; close with the matching end_array().
  void begin_array();
  /// Closes the innermost array.
  void end_array();

  /// Emits the key for the next value inside an object.
  void key(std::string_view k);

  /// Emits a string value (escaped).
  void value(std::string_view v);
  /// Emits a C-string value (escaped).
  void value(const char* v) { value(std::string_view{v}); }
  /// Emits a number; non-finite values are emitted as null.
  void value(double v);
  /// Emits an unsigned integer.
  void value(std::uint64_t v);
  /// Emits a signed integer.
  void value(std::int64_t v);
  /// Emits a signed integer.
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  /// Emits true/false.
  void value(bool v);
  /// Emits null.
  void null();

 private:
  void separate();  ///< comma/newline/indent before a new element
  void indent();

  std::ostream& out_;
  /// One entry per open container: whether it already holds an element.
  std::string stack_;  ///< 'o' = object, 'a' = array (value = container kind)
  std::string has_element_;  ///< parallel to stack_: '1' once an element exists
  bool pending_key_ = false;
};

}  // namespace pam
