#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace pam {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

QuantileReservoir::QuantileReservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_state_(seed ? seed : 1) {
  samples_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void QuantileReservoir::add(double x) {
  ++total_;
  sorted_dirty_ = true;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // Algorithm R reservoir replacement with a xorshift64 step.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const std::size_t j = static_cast<std::size_t>(rng_state_ % total_);
  if (j < capacity_) {
    samples_[j] = x;
  }
}

void QuantileReservoir::merge(const QuantileReservoir& other) {
  // Replaying through add() keeps capacity/replacement semantics and
  // determinism; other's own total_ beyond its retained samples is the
  // information a reservoir has already discarded.
  for (const double x : other.samples_) {
    add(x);
  }
}

double QuantileReservoir::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) {
    return 0.0;
  }
  if (sorted_dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_dirty_ = false;
  }
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void LatencyRecorder::record(SimTime latency) {
  const double ns = static_cast<double>(latency.ns());
  stats_.add(ns);
  reservoir_.add(ns);
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  stats_.merge(other.stats_);
  reservoir_.merge(other.reservoir_);
}

std::string LatencyRecorder::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%s p50=%s p99=%s max=%s",
                count(), mean().to_string().c_str(),
                quantile(0.5).to_string().c_str(),
                quantile(0.99).to_string().c_str(),
                max().to_string().c_str());
  return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
  ++counts_[std::min(idx, counts_.size() - 1)];
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) * bucket_width_;
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return bucket_lo(i) + bucket_width_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%10.1f, %10.1f) %8llu |", bucket_lo(i), bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  return out;
}

ThroughputMeter::ThroughputMeter(SimTime window) : window_(window) {
  assert(window.ns() > 0);
}

void ThroughputMeter::roll_to(SimTime now) {
  while (now - window_start_ >= window_) {
    window_rates_.push_back(rate_of(window_bytes_, window_));
    window_start_ += window_;
    window_bytes_ = Bytes{0};
  }
}

void ThroughputMeter::record(SimTime now, Bytes size) {
  if (!any_) {
    first_ = now;
    window_start_ = now;
    any_ = true;
  }
  roll_to(now);
  last_ = now;
  total_ += size;
  ++packets_;
  window_bytes_ += size;
}

Gbps ThroughputMeter::average_rate() const {
  if (!any_ || last_ <= first_) {
    return Gbps::zero();
  }
  return rate_of(total_, last_ - first_);
}

}  // namespace pam
