// Small string/formatting helpers shared by examples and benches.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pam {

/// printf-style formatting into std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a delimiter; empty fields preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Trim ASCII whitespace on both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Formats `v` with the fewest significant digits that parse back to
/// exactly `v` — the canonical rendering for config surfaces that promise
/// bit-exact text round-trips (scenario specs, policy parameters).
[[nodiscard]] std::string format_double_shortest(double v);

/// Strict full-string double parse: the entire input must be consumed.
/// Unlike bare strtod, trailing junk ("1.5x") is a failure, not a prefix
/// match.
[[nodiscard]] bool parse_double_strict(std::string_view s, double& out);

/// Dotted-quad rendering of a host-order IPv4 address.
[[nodiscard]] std::string ipv4_to_string(std::uint32_t addr_host_order);

/// Parse dotted-quad to host-order IPv4; returns false on malformed input.
[[nodiscard]] bool parse_ipv4(std::string_view s, std::uint32_t& out_host_order) noexcept;

/// Render a fixed-width ASCII table row, used by bench harnesses to print
/// the paper's tables.
[[nodiscard]] std::string table_row(const std::vector<std::string>& cells,
                                    const std::vector<int>& widths);

}  // namespace pam
