// Deterministic random number generation for the simulator and workload
// generators.
//
// The whole evaluation pipeline must be reproducible run-to-run, so every
// stochastic component receives an explicitly seeded Rng.  The engine is
// xoshiro256** (public domain, Blackman & Vigna) — fast, high quality, and
// trivially serialisable, unlike std::mt19937 whose 5 KB of state makes
// snapshotting awkward.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pam {

class Rng {
 public:
  /// Seeds the generator via splitmix64 so that nearby seeds produce
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform integer in [0, n).  Requires n > 0.  Uses Lemire's unbiased
  /// bounded technique.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t n) noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability) noexcept;

  /// Normal variate via Marsaglia polar method.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Pareto variate with shape `alpha` and scale `xm` (heavy-tailed flow
  /// sizes).
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Sample an index from a Zipf(n, s) distribution over [0, n).  Used for
  /// skewed flow popularity.  O(1) per sample after O(n) table build — the
  /// table is cached per (n, s).
  [[nodiscard]] std::size_t zipf(std::size_t n, double s) noexcept;

  /// Split a statistically independent child stream (for per-component RNGs).
  [[nodiscard]] Rng split() noexcept;

  /// Derives a deterministic child seed for stream `stream` of lineage
  /// `base`.  The experiment layer threads every per-component seed (traffic
  /// sources, churn arrivals, link traces, fuzz cases) from the spec's seed
  /// through this — never std::random_device or the clock.
  [[nodiscard]] static std::uint64_t derive(std::uint64_t base,
                                            std::uint64_t stream) noexcept;

  /// Raw state access, used by the migration engine to snapshot NFs whose
  /// behaviour depends on randomness (e.g. sampling loggers).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept { return s_; }
  void restore(const std::array<std::uint64_t, 4>& s) noexcept { s_ = s; }

 private:
  std::array<std::uint64_t, 4> s_{};
  // Cached alias table for zipf().
  std::size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace pam
