#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pam {

std::string format_double_shortest(double v) {
  for (int prec = 1; prec <= 17; ++prec) {
    std::string s = format("%.*g", prec, v);
    if (std::strtod(s.c_str(), nullptr) == v) {
      return s;
    }
  }
  return format("%.17g", v);
}

bool parse_double_strict(std::string_view s, double& out) {
  const std::string buf{s};
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end != buf.c_str() && *end == '\0';
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

std::string ipv4_to_string(std::uint32_t addr) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u",
                (addr >> 24) & 0xff, (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

bool parse_ipv4(std::string_view s, std::uint32_t& out) noexcept {
  std::uint32_t parts[4] = {0, 0, 0, 0};
  int part = 0;
  int digits = 0;
  for (const char c : s) {
    if (c == '.') {
      if (digits == 0 || part >= 3) {
        return false;
      }
      ++part;
      digits = 0;
    } else if (c >= '0' && c <= '9') {
      parts[part] = parts[part] * 10 + static_cast<std::uint32_t>(c - '0');
      if (parts[part] > 255 || ++digits > 3) {
        return false;
      }
    } else {
      return false;
    }
  }
  if (part != 3 || digits == 0) {
    return false;
  }
  out = (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3];
  return true;
}

std::string table_row(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string out = "|";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    out += format(" %-*s |", w, cells[i].c_str());
  }
  return out;
}

}  // namespace pam
