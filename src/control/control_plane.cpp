#include "control/control_plane.hpp"

#include <utility>

namespace pam {

namespace {

std::vector<std::string> moved_names(const MigrationPlan& plan) {
  std::vector<std::string> out;
  out.reserve(plan.steps.size());
  for (const auto& step : plan.steps) {
    out.push_back(step.nf_name);
  }
  return out;
}

}  // namespace

std::string_view to_string(ControlEvent::Kind kind) noexcept {
  switch (kind) {
    case ControlEvent::Kind::kTriggered: return "triggered";
    case ControlEvent::Kind::kPlanned: return "planned";
    case ControlEvent::Kind::kMigrated: return "migrated";
    case ControlEvent::Kind::kInfeasible: return "infeasible";
    case ControlEvent::Kind::kScaleOut: return "scale-out";
    case ControlEvent::Kind::kScaleIn: return "scale-in";
    case ControlEvent::Kind::kCrossServerMove: return "cross-server-move";
    case ControlEvent::Kind::kEvacuated: return "evacuated";
    case ControlEvent::Kind::kCrossRackMove: return "cross_rack_move";
  }
  return "?";
}

std::optional<ControlEvent::Kind> control_event_kind_from_string(
    std::string_view name) noexcept {
  for (const ControlEvent::Kind kind : all_control_event_kinds()) {
    if (name == to_string(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

const std::vector<ControlEvent::Kind>& all_control_event_kinds() {
  static const std::vector<ControlEvent::Kind> kinds = {
      ControlEvent::Kind::kTriggered,      ControlEvent::Kind::kPlanned,
      ControlEvent::Kind::kMigrated,       ControlEvent::Kind::kInfeasible,
      ControlEvent::Kind::kScaleOut,       ControlEvent::Kind::kScaleIn,
      ControlEvent::Kind::kCrossServerMove, ControlEvent::Kind::kEvacuated,
      ControlEvent::Kind::kCrossRackMove,
  };
  return kinds;
}

ControlPlane::ControlPlane(SimulationKernel& kernel, Sensor& sensor,
                           Actuator& actuator, std::size_t num_chains,
                           std::unique_ptr<MigrationPolicy> policy,
                           ControlPlaneOptions options)
    : kernel_(kernel),
      sensor_(sensor),
      actuator_(actuator),
      policy_(std::move(policy)),
      chain_policies_(num_chains),
      options_(options),
      chains_(num_chains) {}

void ControlPlane::set_chain_policy(std::size_t c,
                                    std::unique_ptr<MigrationPolicy> policy) {
  chain_policies_.at(c) = std::move(policy);
}

const MigrationPolicy& ControlPlane::policy(std::size_t c) const {
  const auto& override_policy = chain_policies_.at(c);
  return override_policy != nullptr ? *override_policy : *policy_;
}

void ControlPlane::arm() {
  kernel_.schedule_periodic(options_.first_check, options_.period,
                            [this] { check_all(); });
}

void ControlPlane::check_all() {
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    check(c);
  }
}

void ControlPlane::emit(ControlEvent event) {
  event.at = kernel_.now();
  events_.push_back(std::move(event));
}

void ControlPlane::complete_action(std::size_t c) {
  chains_.at(c).last_action_done = kernel_.now();
}

bool ControlPlane::chain_busy_or_cooling(std::size_t c) const {
  if (actuator_.in_flight(c)) {
    return true;
  }
  const ChainState& state = chains_.at(c);
  return state.last_action_done.ns() >= 0 &&
         kernel_.now() - state.last_action_done < options_.cooldown;
}

void ControlPlane::check(std::size_t c) {
  if (actuator_.in_flight(c)) {
    return;  // one action at a time per chain
  }
  const ChainState& state = chains_.at(c);
  if (state.last_action_done.ns() >= 0 &&
      kernel_.now() - state.last_action_done < options_.cooldown) {
    return;
  }

  const Sample sample = sensor_.sense(c);
  if (!sample.has_resident) {
    return;  // everything already off-loaded; nothing left to relieve
  }
  const bool chain_hot = sample.util.smartnic >= options_.trigger_utilization;
  if (!chain_hot && !sample.slot_hot) {
    // Calm direction: pull pushed-aside vNFs back when well under the
    // trigger and a scale-in policy is installed.
    if (scale_in_policy_ != nullptr &&
        sample.util.smartnic < options_.scale_in_below_utilization) {
      Planned back = sensor_.plan(c, *scale_in_policy_, sample.offered);
      if (back.plan.feasible && !back.plan.empty()) {
        ControlEvent planned;
        planned.kind = ControlEvent::Kind::kScaleIn;
        planned.chain = c;
        planned.server = sample.server;
        planned.moved_nfs = moved_names(back.plan);
        planned.smartnic_utilization = back.projected_smartnic;
        planned.cpu_utilization = back.projected_cpu;
        planned.detail = back.plan.describe();
        emit(std::move(planned));
        actuator_.execute(c, back.plan, [this, c, server = sample.server] {
          complete_action(c);
          ControlEvent done;
          done.kind = ControlEvent::Kind::kMigrated;
          done.chain = c;
          done.server = server;
          done.detail = "scale-in complete";
          emit(std::move(done));
        });
      }
    }
    return;
  }

  ControlEvent triggered;
  triggered.kind = ControlEvent::Kind::kTriggered;
  triggered.chain = c;
  triggered.server = sample.server;
  triggered.smartnic_utilization = sample.util.smartnic;
  triggered.cpu_utilization = sample.util.cpu;
  triggered.detail = sensor_.describe_overload(c, sample);
  emit(std::move(triggered));

  Planned action = sensor_.plan(c, policy(c), sample.offered);
  if (action.plan.feasible && !action.plan.empty()) {
    ControlEvent planned;
    planned.kind = ControlEvent::Kind::kPlanned;
    planned.chain = c;
    planned.server = sample.server;
    planned.moved_nfs = moved_names(action.plan);
    planned.smartnic_utilization = action.projected_smartnic;
    planned.cpu_utilization = action.projected_cpu;
    planned.detail = action.plan.describe();
    emit(std::move(planned));
    actuator_.execute(c, action.plan, [this, c, server = sample.server] {
      complete_action(c);
      ControlEvent done;
      done.kind = ControlEvent::Kind::kMigrated;
      done.chain = c;
      done.server = server;
      done.detail = "migration complete";
      emit(std::move(done));
    });
    return;
  }
  if (action.plan.feasible && action.plan.empty() && !sample.slot_hot) {
    return;  // policy saw no useful move and no emergency
  }
  // Both devices hot (or the slot is saturated by co-homed chains): the
  // paper defers to OpenNF-style scale-out.  What that means — recording the
  // request on one box, a cross-server border-NF move in a rack — is the
  // actuator's business.
  const std::string reason = action.plan.feasible
                                 ? "slot saturated by co-homed chains"
                                 : action.plan.infeasibility_reason;
  actuator_.scale_out(c, reason, sample.offered);
}

}  // namespace pam
