// The single-server scaling controller.
//
// "The network administrators can periodically query the load of SmartNIC
// and CPU and execute the PAM border vNF selection algorithm" — this class
// runs that loop for one chain on one box.  The loop itself (period,
// trigger, cooldown, in-flight tracking, typed ControlEvent log) lives in
// ControlPlane; Controller is the single-server specialisation:
//
//   Sensor    — trailing-window ingress rate + ChainAnalyzer utilisation of
//               the simulator's chain
//   Actuator  — hand feasible plans to the loss-free MigrationEngine; when
//               a plan is infeasible (both devices hot), record an
//               OpenNF-style scale-out request ("the network operator must
//               start another instance" — actually executing it is
//               FleetController's rack-scale job)
//
// All decisions land in the plane's typed event log, which the experiment
// layer serialises as the `control_events` JSON section.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chain/chain_analyzer.hpp"
#include "control/control_plane.hpp"
#include "migration/migration_engine.hpp"

namespace pam {

/// The single-server controller exposes exactly the shared loop's knobs.
using ControllerOptions = ControlPlaneOptions;

class Controller final : private ControlPlane::Sensor,
                         private ControlPlane::Actuator {
 public:
  Controller(ChainSimulator& sim, std::unique_ptr<MigrationPolicy> policy,
             ControllerOptions options = {});

  /// Installs the calm-direction policy (see
  /// ControlPlaneOptions::scale_in_below_utilization).
  void set_scale_in_policy(std::unique_ptr<MigrationPolicy> policy) {
    plane_.set_scale_in_policy(std::move(policy));
  }

  /// Registers the periodic check with the simulator.  Call before run().
  void arm() { plane_.arm(); }

  [[nodiscard]] const std::vector<ControlEvent>& events() const noexcept {
    return plane_.events();
  }
  [[nodiscard]] std::size_t migrations_executed() const noexcept {
    return engine_.records().size();
  }
  [[nodiscard]] const MigrationEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] bool scale_out_requested() const noexcept { return scale_out_requested_; }
  /// The shared loop (options, per-chain policies, event emission).
  [[nodiscard]] ControlPlane& plane() noexcept { return plane_; }

 private:
  // ControlPlane::Sensor
  [[nodiscard]] ControlPlane::Sample sense(std::size_t c) const override;
  [[nodiscard]] std::string describe_overload(
      std::size_t c, const ControlPlane::Sample& sample) const override;
  [[nodiscard]] ControlPlane::Planned plan(std::size_t c,
                                           const MigrationPolicy& policy,
                                           Gbps offered) const override;

  // ControlPlane::Actuator
  [[nodiscard]] bool in_flight(std::size_t c) const override;
  void execute(std::size_t c, const MigrationPlan& plan,
               std::function<void()> done) override;
  void scale_out(std::size_t c, const std::string& reason, Gbps offered) override;

  ChainSimulator& sim_;
  ChainAnalyzer analyzer_;
  MigrationEngine engine_;
  bool scale_out_requested_ = false;
  ControlPlane plane_;  ///< last member: its Sensor/Actuator are *this
};

}  // namespace pam
