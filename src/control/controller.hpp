// The scaling controller.
//
// "The network administrators can periodically query the load of SmartNIC
// and CPU and execute the PAM border vNF selection algorithm" — this class
// is that loop, running inside simulated time:
//
//   every `period`:
//     estimate the offered load from the trailing ingress window
//     evaluate device utilisation with ChainAnalyzer
//     if the SmartNIC exceeds `trigger_utilization` and no migration is in
//     progress and the cooldown has expired:
//         plan  = policy->plan(...)
//         feasible      -> hand to the MigrationEngine
//         infeasible    -> record a scale-out decision (OpenNF fallback)
//
// All decisions land in an event log the examples print as a timeline.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chain/chain_analyzer.hpp"
#include "core/policy.hpp"
#include "migration/migration_engine.hpp"

namespace pam {

struct ControllerOptions {
  SimTime period = SimTime::milliseconds(10.0);
  SimTime first_check = SimTime::milliseconds(10.0);
  /// SmartNIC utilisation that arms the policy.
  double trigger_utilization = 1.0;
  /// Quiet time after a completed migration before re-triggering.
  SimTime cooldown = SimTime::milliseconds(20.0);
  /// Trailing window used to estimate the offered load.
  SimTime rate_window = SimTime::milliseconds(5.0);

  /// Bidirectional placement: when set, a second policy (normally
  /// ScaleInPolicy) runs whenever the SmartNIC sits *below* this threshold,
  /// returning pushed-aside vNFs to the SmartNIC.  Keep it well under the
  /// overload trigger to avoid migration ping-pong.
  double scale_in_below_utilization = 0.0;  ///< 0 disables scale-in
};

struct ControllerEvent {
  SimTime at = SimTime::zero();
  std::string what;
};

class Controller {
 public:
  Controller(ChainSimulator& sim, std::unique_ptr<MigrationPolicy> policy,
             ControllerOptions options = {});

  /// Installs the calm-direction policy (see
  /// ControllerOptions::scale_in_below_utilization).
  void set_scale_in_policy(std::unique_ptr<MigrationPolicy> policy) {
    scale_in_policy_ = std::move(policy);
  }

  /// Registers the periodic check with the simulator.  Call before run().
  void arm();

  [[nodiscard]] const std::vector<ControllerEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t migrations_executed() const noexcept {
    return engine_.records().size();
  }
  [[nodiscard]] const MigrationEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] bool scale_out_requested() const noexcept { return scale_out_requested_; }

 private:
  void check();
  void note(std::string what);

  ChainSimulator& sim_;
  std::unique_ptr<MigrationPolicy> policy_;
  std::unique_ptr<MigrationPolicy> scale_in_policy_;
  ControllerOptions options_;
  ChainAnalyzer analyzer_;
  MigrationEngine engine_;
  std::vector<ControllerEvent> events_;
  SimTime last_migration_done_ = SimTime::nanoseconds(-1);
  bool scale_out_requested_ = false;
};

}  // namespace pam
