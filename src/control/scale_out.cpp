#include "control/scale_out.hpp"

#include <cassert>

#include "common/strings.hpp"

namespace pam {

ScaleOutDecision ScaleOutPlanner::plan(const ServiceChain& chain,
                                       const ChainAnalyzer& analyzer,
                                       Gbps offered) const {
  assert(headroom_ > 0.0 && headroom_ <= 1.0);
  ScaleOutDecision out;
  const Gbps sustainable = analyzer.max_sustainable_rate(chain) * headroom_;
  if (sustainable.value() <= 0.0) {
    out.replicas = 0;
    out.rationale = "chain cannot carry any load on this hardware";
    return out;
  }
  std::size_t replicas = 1;
  while (Gbps{offered.value() / static_cast<double>(replicas)} > sustainable &&
         replicas < 1024) {
    ++replicas;
  }
  out.replicas = replicas;
  out.per_replica_rate = Gbps{offered.value() / static_cast<double>(replicas)};
  out.per_replica_bottleneck =
      analyzer.utilization(chain, out.per_replica_rate).bottleneck();
  out.split_weights.assign(replicas, 1.0 / static_cast<double>(replicas));
  out.rationale = format(
      "offered %s exceeds per-replica sustainable %s; split across %zu replicas "
      "-> %.3f bottleneck utilisation each",
      offered.to_string().c_str(), sustainable.to_string().c_str(), replicas,
      out.per_replica_bottleneck);
  return out;
}

}  // namespace pam
