// The datacenter tier of the control hierarchy.
//
// FleetController closes the scaling loop inside one rack; the
// DatacenterOrchestrator closes it across racks.  It reuses the SAME
// ControlPlane loop the per-server and per-rack controllers run — sense,
// trigger, plan, act — but its "act" is a cross-rack lease: a border NF of
// a chain homed on a saturated rack moves to the least-loaded slot of
// another rack (ControlEvent kind `cross_rack_move`), where packets reach
// it over the epoch-synchronized shard fabric.
//
// Determinism contract: the orchestrator runs only at epoch barriers (the
// DatacenterSimulator's barrier hook), when every shard kernel is parked at
// the same simulated time.  Decisions ride on lexicographically ordered
// (load, slot) scans of barrier-time state, so a run's lease history is
// identical for threads=1 and threads=N.  Lease commits are deferred by the
// migration cost, rounded up to at least one epoch, and applied at a later
// barrier — never mid-epoch, so no shard observes a placement change while
// running.
//
// Hierarchy etiquette: the orchestrator never races a rack controller on a
// chain.  Before sensing a chain it checks the home rack's control plane
// (busy or cooling → skip), and while one of its own leases is pending or
// cooling it holds the rack controller off through
// FleetController::set_external_hold — using only barrier-published state,
// so rack threads can evaluate the hold mid-epoch without ever touching
// another shard's clock.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "control/fleet_controller.hpp"
#include "sim/datacenter_simulator.hpp"

namespace pam {

struct DatacenterOrchestratorOptions : ControlPlaneOptions {
  /// A lease target qualifies only while its hottest device stays below
  /// this after absorbing the NF (same semantics as the rack controller's
  /// knob, applied fleet-wide).
  double target_max_load = 0.9;
  /// Pause-to-commit cost of one cross-rack lease (state transfer over the
  /// datacenter fabric); rounded up to at least one epoch so the commit
  /// always lands on a barrier after the decision.
  SimTime lease_migration_cost = SimTime::milliseconds(1.0);
};

class DatacenterOrchestrator final : private ControlPlane::Sensor,
                                     private ControlPlane::Actuator {
 public:
  /// `racks[r]` is rack r's FleetController (may hold fewer entries than
  /// racks; missing ones mean the rack runs uncontrolled).  Installs the
  /// mutual-hold predicate into every provided controller.
  DatacenterOrchestrator(DatacenterSimulator& dc,
                         std::vector<FleetController*> racks,
                         DatacenterOrchestratorOptions options = {});

  DatacenterOrchestrator(const DatacenterOrchestrator&) = delete;
  DatacenterOrchestrator& operator=(const DatacenterOrchestrator&) = delete;

  /// Barrier driver: wire into DatacenterSimulator::set_barrier_hook.
  /// Runs the periodic check at its own cadence (skipped while draining)
  /// and commits leases that have completed their migration cost.
  void on_barrier(SimTime t, bool draining);

  /// True while a lease is still pending commit — wire into
  /// DatacenterSimulator::set_drain_gate so the epoch loop keeps cycling
  /// until every decided move has landed.
  [[nodiscard]] bool has_pending() const noexcept { return !pending_.empty(); }

  /// Mutual-hold probe for rack controllers: true while chain `c` (global
  /// id) has a lease pending or is cooling down after one.  Reads only
  /// barrier-published state; callable from shard threads mid-epoch.
  [[nodiscard]] bool holds(std::size_t c) const;

  [[nodiscard]] const std::vector<ControlEvent>& events() const noexcept {
    return plane_.events();
  }
  /// Committed cross-rack leases.
  [[nodiscard]] std::size_t cross_rack_moves() const noexcept {
    return cross_rack_moves_;
  }
  [[nodiscard]] ControlPlane& plane() noexcept { return plane_; }

 private:
  struct PendingLease {
    std::size_t chain = 0;
    std::size_t node = 0;
    std::size_t target = 0;  ///< global slot
    SimTime commit_at;
  };

  // ControlPlane::Sensor
  [[nodiscard]] ControlPlane::Sample sense(std::size_t c) const override;
  [[nodiscard]] std::string describe_overload(
      std::size_t c, const ControlPlane::Sample& sample) const override;
  [[nodiscard]] ControlPlane::Planned plan(std::size_t c,
                                           const MigrationPolicy& policy,
                                           Gbps offered) const override;

  // ControlPlane::Actuator
  [[nodiscard]] bool in_flight(std::size_t c) const override;
  void execute(std::size_t c, const MigrationPlan& plan,
               std::function<void()> done) override;
  void scale_out(std::size_t c, const std::string& reason, Gbps offered) override;

  /// True when every alive slot of rack `r` has its hottest device at or
  /// above target_max_load — intra-rack scale-out can no longer relieve the
  /// rack, which is the orchestrator's trigger.
  [[nodiscard]] bool rack_pressured(std::size_t r) const;

  void commit_due(SimTime t);

  DatacenterSimulator& dc_;
  std::vector<FleetController*> racks_;
  DatacenterOrchestratorOptions options_;
  std::vector<PendingLease> pending_;     ///< barrier-mutated, in decide order
  std::vector<SimTime> cooling_until_;    ///< per chain; barrier-mutated
  SimTime last_barrier_ = SimTime::zero();
  SimTime next_check_;
  std::size_t cross_rack_moves_ = 0;
  ControlPlane plane_;  ///< last member: its Sensor/Actuator are *this
};

}  // namespace pam
