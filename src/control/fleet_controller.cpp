#include "control/fleet_controller.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "chain/border.hpp"
#include "common/strings.hpp"

namespace pam {

FleetController::FleetController(ClusterSimulator& cluster,
                                 std::unique_ptr<MigrationPolicy> policy,
                                 FleetControllerOptions options)
    : cluster_(cluster),
      options_(options),
      plane_(cluster.kernel(), *this, *this, cluster.num_chains(),
             std::move(policy), options) {
  analyzers_.reserve(cluster_.num_servers());
  for (std::size_t s = 0; s < cluster_.num_servers(); ++s) {
    analyzers_.emplace_back(cluster_.server(s), cluster_.calibration());
  }
  chains_.resize(cluster_.num_chains());
  views_.resize(cluster_.num_chains());
  for (std::size_t c = 0; c < cluster_.num_chains(); ++c) {
    chains_[c].engine = std::make_unique<MigrationEngine>(cluster_.chain_sim(c));
  }
}

std::size_t FleetController::migrations_executed() const noexcept {
  std::size_t n = 0;
  for (const auto& state : chains_) {
    n += state.engine->records().size();
  }
  return n;
}

const FleetController::HomeView& FleetController::home_view(std::size_t c) const {
  const ChainSimulator& sim = cluster_.chain_sim(c);
  HomeView& view = views_.at(c);
  if (view.built_at == cluster_.kernel().now()) {
    return view;  // same tick: placement cannot have changed underneath us
  }
  const ServiceChain& full = sim.chain();
  ServiceChain reduced{full.name()};
  reduced.set_ingress(full.ingress());
  reduced.set_egress(full.egress());
  view.index_map.clear();
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (sim.node_remote(i)) {
      continue;  // leased to another rack: burns no home capacity, and the
                 // orchestrator alone may move it again
    }
    if (sim.node_server(i) == sim.home_server()) {
      reduced.add_node(full.node(i).spec, full.node(i).location);
      view.index_map.push_back(i);
    }
  }
  view.chain = std::move(reduced);
  view.built_at = cluster_.kernel().now();
  return view;
}

ControlPlane::Sample FleetController::sense(std::size_t c) const {
  const ChainSimulator& sim = cluster_.chain_sim(c);
  const std::size_t home = sim.home_server();

  ControlPlane::Sample sample;
  sample.server = home;
  sample.offered = sim.observed_ingress_rate(options_.rate_window);

  const ServiceChain& resident = home_view(c).chain;
  if (resident.empty()) {
    sample.has_resident = false;
    return sample;
  }
  sample.util = analyzers_[home].utilization(resident, sample.offered);
  // Second overload signal beyond the chain's own analytic demand: the
  // slot's live device load — co-homed chains can saturate a shared
  // SmartNIC while every individual chain sits below the trigger.
  sample.slot_hot =
      cluster_.server_nic_load(home) >= options_.trigger_utilization;
  return sample;
}

std::string FleetController::describe_overload(
    std::size_t /*c*/, const ControlPlane::Sample& sample) const {
  return format("overload on server %zu (nic load %.2f) at %s offered: %s",
                sample.server, cluster_.server_nic_load(sample.server),
                sample.offered.to_string().c_str(),
                sample.util.describe().c_str());
}

ControlPlane::Planned FleetController::plan(std::size_t c,
                                            const MigrationPolicy& policy,
                                            Gbps offered) const {
  const std::size_t home = cluster_.chain_sim(c).home_server();
  const HomeView& view = home_view(c);

  ControlPlane::Planned out;
  out.plan = policy.plan(view.chain, analyzers_[home], offered);
  if (out.plan.feasible && !out.plan.empty()) {
    const auto projected =
        analyzers_[home].utilization(out.plan.apply_to(view.chain), offered);
    out.projected_smartnic = projected.smartnic;
    out.projected_cpu = projected.cpu;
    for (auto& step : out.plan.steps) {
      step.node_index = view.index_map.at(step.node_index);  // reduced -> real
    }
  }
  return out;
}

bool FleetController::in_flight(std::size_t c) const {
  const ChainState& state = chains_.at(c);
  if (state.engine->busy() || state.remote_moves_in_flight > 0) {
    return true;
  }
  return external_hold_ != nullptr && external_hold_(c);
}

void FleetController::execute(std::size_t c, const MigrationPlan& plan,
                              std::function<void()> done) {
  chains_.at(c).engine->execute(plan, std::move(done));
}

void FleetController::scale_out(std::size_t c, const std::string& reason,
                                Gbps offered) {
  ChainSimulator& sim = cluster_.chain_sim(c);
  const std::size_t home = sim.home_server();

  // Candidates are the home chain's SmartNIC border NFs — moving one is
  // crossing-safe on the home server (PAM Step 1), and it re-enters the
  // fleet at the target's SmartNIC side.
  const HomeView& view = home_view(c);
  const BorderSets borders = find_borders(view.chain);
  std::vector<std::size_t> candidates;
  for (const std::size_t reduced_idx : borders.all()) {
    const std::size_t real_idx = view.index_map.at(reduced_idx);
    if (!sim.paused(real_idx)) {
      candidates.push_back(real_idx);
    }
  }
  if (candidates.empty()) {
    ControlEvent event;
    event.kind = ControlEvent::Kind::kInfeasible;
    event.chain = c;
    event.server = home;
    event.detail =
        format("scale-out needed but no movable border NF: %s", reason.c_str());
    plane_.emit(std::move(event));
    return;
  }

  // Fit-aware least-loaded target: project the candidate NF's SmartNIC
  // demand onto each slot and require the slot's hottest device to stay
  // below target_max_load after the move — a slot that cannot absorb the
  // NF would just trade one hot spot for another.
  std::size_t idx = 0;
  std::size_t target = home;
  double projected = 0.0;
  for (const std::size_t candidate : candidates) {
    const Gbps nf_capacity =
        sim.chain().node(candidate).spec.capacity.on(Location::kSmartNic);
    if (nf_capacity.value() <= 0.0) {
      continue;
    }
    const double contribution =
        sim.chain().offered_at(candidate, offered).value() / nf_capacity.value();
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < cluster_.num_servers(); ++s) {
      if (s == home || !cluster_.server_alive(s)) {
        continue;
      }
      const double nic = cluster_.server_nic_load(s);
      const double cpu = cluster_.server_cpu_load(s);
      const double fit = std::max(nic + contribution, cpu);
      const double load = std::max(nic, cpu);
      if (fit <= options_.target_max_load && load < best_load) {
        best_load = load;
        target = s;
        projected = fit;
      }
    }
    if (target != home) {
      idx = candidate;
      break;
    }
  }
  if (target == home) {
    ControlEvent event;
    event.kind = ControlEvent::Kind::kInfeasible;
    event.chain = c;
    event.server = home;
    event.detail = format("scale-out needed but no slot can absorb a border NF "
                          "under %.2f load: %s",
                          options_.target_max_load, reason.c_str());
    plane_.emit(std::move(event));
    return;
  }

  const std::string nf_name = sim.chain().node(idx).spec.name;
  ControlEvent decided;
  decided.kind = ControlEvent::Kind::kScaleOut;
  decided.chain = c;
  decided.server = target;
  decided.moved_nfs.push_back(nf_name);
  decided.smartnic_utilization = projected;
  decided.detail = format("%s -> scale-out: moving %s to server %zu "
                          "(projected load %.2f)",
                          reason.c_str(), nf_name.c_str(), target, projected);
  plane_.emit(std::move(decided));

  // Loss-free cross-server move: pause, pay the fabric transfer, re-bind,
  // flush.  Mirrors the single-server engine's pause/transfer/resume at
  // rack granularity.
  ++chains_.at(c).remote_moves_in_flight;
  sim.pause_node(idx);
  cluster_.kernel().schedule_after(
      options_.remote_migration_cost, [this, c, idx, target] {
        complete_remote_move(c, idx, target,
                             ControlEvent::Kind::kCrossServerMove);
      });
}

void FleetController::complete_remote_move(std::size_t c, std::size_t node,
                                           std::size_t target,
                                           ControlEvent::Kind kind) {
  ChainSimulator& sim = cluster_.chain_sim(c);
  const std::string nf_name = sim.chain().node(node).spec.name;
  const std::size_t buffered = sim.buffered_at(node);
  --chains_.at(c).remote_moves_in_flight;
  if (!cluster_.server_alive(target)) {
    // The target died while the transfer was in flight: abort in place,
    // loss-free — buffered packets flush through the old binding.
    sim.resume_node(node);
    plane_.complete_action(c);
    ControlEvent aborted;
    aborted.kind = ControlEvent::Kind::kInfeasible;
    aborted.chain = c;
    aborted.server = target;
    aborted.moved_nfs.push_back(nf_name);
    aborted.detail = format(
        "in-flight move of %s aborted: target server %zu died (%zu buffered "
        "flushed in place)",
        nf_name.c_str(), target, buffered);
    plane_.emit(std::move(aborted));
    return;
  }
  // Scale-out deliberately re-enters at the target's SmartNIC; an evacuated
  // NF keeps its device placement.
  const Location loc = kind == ControlEvent::Kind::kEvacuated
                           ? sim.chain().location_of(node)
                           : Location::kSmartNic;
  cluster_.move_node(c, node, target, loc);
  sim.resume_node(node);
  plane_.complete_action(c);
  ControlEvent done;
  done.kind = kind;
  done.chain = c;
  done.server = target;
  done.moved_nfs.push_back(nf_name);
  if (kind == ControlEvent::Kind::kEvacuated) {
    ++evacuations_;
    done.detail =
        format("evacuation complete: %s now on server %zu (%zu buffered)",
               nf_name.c_str(), target, buffered);
  } else {
    ++scale_out_moves_;
    done.detail =
        format("scale-out complete: %s now on server %zu (%zu buffered)",
               nf_name.c_str(), target, buffered);
  }
  plane_.emit(std::move(done));
}

void FleetController::on_server_failed(std::size_t server) {
  for (std::size_t c = 0; c < cluster_.num_chains(); ++c) {
    ChainSimulator& sim = cluster_.chain_sim(c);
    for (std::size_t i = 0; i < sim.chain().size(); ++i) {
      if (sim.node_server(i) != server || sim.paused(i) || sim.node_remote(i)) {
        continue;  // paused: an in-flight move owns this node; remote: the
                   // node lives on another rack, untouched by this failure
      }
      // Least-loaded surviving slot.  No target_max_load fit check here —
      // getting off the dead slot outranks the load SLO.
      std::size_t target = server;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < cluster_.num_servers(); ++s) {
        if (s == server || !cluster_.server_alive(s)) {
          continue;
        }
        const double load = cluster_.server_load(s);
        if (load < best) {
          best = load;
          target = s;
        }
      }
      if (target == server) {
        ControlEvent event;
        event.kind = ControlEvent::Kind::kInfeasible;
        event.chain = c;
        event.server = server;
        event.moved_nfs.push_back(sim.chain().node(i).spec.name);
        event.detail = format(
            "server %zu failed but no surviving slot to evacuate %s to",
            server, sim.chain().node(i).spec.name.c_str());
        plane_.emit(std::move(event));
        continue;
      }
      ++chains_.at(c).remote_moves_in_flight;
      sim.pause_node(i);
      cluster_.kernel().schedule_after(
          options_.remote_migration_cost, [this, c, i, target] {
            complete_remote_move(c, i, target, ControlEvent::Kind::kEvacuated);
          });
    }
  }
}

}  // namespace pam
