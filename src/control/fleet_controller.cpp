#include "control/fleet_controller.hpp"

#include <algorithm>
#include <limits>

#include "chain/border.hpp"
#include "common/strings.hpp"

namespace pam {

FleetController::FleetController(ClusterSimulator& cluster,
                                 std::unique_ptr<MigrationPolicy> policy,
                                 FleetControllerOptions options)
    : cluster_(cluster), policy_(std::move(policy)), options_(options) {
  analyzers_.reserve(cluster_.num_servers());
  for (std::size_t s = 0; s < cluster_.num_servers(); ++s) {
    analyzers_.emplace_back(cluster_.server(s), cluster_.calibration());
  }
  chains_.resize(cluster_.num_chains());
  for (std::size_t c = 0; c < cluster_.num_chains(); ++c) {
    chains_[c].engine = std::make_unique<MigrationEngine>(cluster_.chain_sim(c));
  }
}

void FleetController::arm() {
  cluster_.kernel().schedule_periodic(options_.first_check, options_.period,
                                      [this] { check(); });
}

void FleetController::note(std::size_t c, std::string what) {
  events_.push_back(FleetEvent{cluster_.kernel().now(), c, std::move(what)});
}

std::size_t FleetController::migrations_executed() const noexcept {
  std::size_t n = 0;
  for (const auto& state : chains_) {
    n += state.engine->records().size();
  }
  return n;
}

ServiceChain FleetController::home_view(std::size_t c,
                                        std::vector<std::size_t>& index_map) const {
  const ChainSimulator& sim = cluster_.chain_sim(c);
  const ServiceChain& full = sim.chain();
  ServiceChain reduced{full.name()};
  reduced.set_ingress(full.ingress());
  reduced.set_egress(full.egress());
  index_map.clear();
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (sim.node_server(i) == sim.home_server()) {
      reduced.add_node(full.node(i).spec, full.node(i).location);
      index_map.push_back(i);
    }
  }
  return reduced;
}

void FleetController::check() {
  for (std::size_t c = 0; c < cluster_.num_chains(); ++c) {
    check_chain(c);
  }
}

void FleetController::check_chain(std::size_t c) {
  ChainState& state = chains_[c];
  if (state.engine->busy() || state.remote_move_in_progress) {
    return;  // one action at a time per chain
  }
  if (state.last_action_done.ns() >= 0 &&
      cluster_.kernel().now() - state.last_action_done < options_.cooldown) {
    return;
  }

  ChainSimulator& sim = cluster_.chain_sim(c);
  const std::size_t home = sim.home_server();
  const Gbps rate = sim.observed_ingress_rate(options_.rate_window);

  std::vector<std::size_t> index_map;
  const ServiceChain resident = home_view(c, index_map);
  if (resident.empty()) {
    return;  // everything already off-loaded; nothing left to relieve
  }
  const ChainAnalyzer& analyzer = analyzers_[home];
  const auto util = analyzer.utilization(resident, rate);
  // Two overload signals: this chain's own analytic demand, and the slot's
  // live device load — co-homed chains can saturate a shared SmartNIC while
  // every individual chain sits below the trigger.
  const bool chain_hot = util.smartnic >= options_.trigger_utilization;
  const bool slot_hot =
      cluster_.server_nic_load(home) >= options_.trigger_utilization;
  if (!chain_hot && !slot_hot) {
    return;
  }
  note(c, format("overload on server %zu (nic load %.2f) at %s offered: %s",
                 home, cluster_.server_nic_load(home), rate.to_string().c_str(),
                 util.describe().c_str()));

  // First choice: the paper's push-aside migration within the home server.
  MigrationPlan plan = policy_->plan(resident, analyzer, rate);
  if (plan.feasible && !plan.empty()) {
    for (auto& step : plan.steps) {
      step.node_index = index_map.at(step.node_index);  // reduced -> real
    }
    note(c, plan.describe());
    state.engine->execute(plan, [this, c] {
      chains_[c].last_action_done = cluster_.kernel().now();
      note(c, "migration complete");
    });
    return;
  }
  if (plan.feasible && plan.empty() && !slot_hot) {
    return;  // policy saw no useful move and no emergency
  }
  const std::string reason = plan.feasible
                                 ? "slot saturated by co-homed chains"
                                 : plan.infeasibility_reason;

  // Both home devices hot: cross-server scale-out.  Candidates are the
  // home chain's SmartNIC border NFs — moving one is crossing-safe on the
  // home server (PAM Step 1), and it re-enters the fleet at the target's
  // SmartNIC side.
  const BorderSets borders = find_borders(resident);
  std::vector<std::size_t> candidates;
  for (const std::size_t reduced_idx : borders.all()) {
    const std::size_t real_idx = index_map.at(reduced_idx);
    if (!sim.paused(real_idx)) {
      candidates.push_back(real_idx);
    }
  }
  if (candidates.empty()) {
    note(c, format("scale-out needed but no movable border NF: %s",
                   reason.c_str()));
    return;
  }

  // Fit-aware least-loaded target: project the candidate NF's SmartNIC
  // demand onto each slot and require the slot's hottest device to stay
  // below target_max_load after the move — a slot that cannot absorb the
  // NF would just trade one hot spot for another.
  std::size_t idx = 0;
  std::size_t target = home;
  double projected = 0.0;
  for (const std::size_t candidate : candidates) {
    const Gbps nf_capacity =
        sim.chain().node(candidate).spec.capacity.on(Location::kSmartNic);
    if (nf_capacity.value() <= 0.0) {
      continue;
    }
    const double contribution =
        sim.chain().offered_at(candidate, rate).value() / nf_capacity.value();
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < cluster_.num_servers(); ++s) {
      if (s == home) {
        continue;
      }
      const double nic = cluster_.server_nic_load(s);
      const double cpu = cluster_.server_cpu_load(s);
      const double fit = std::max(nic + contribution, cpu);
      const double load = std::max(nic, cpu);
      if (fit <= options_.target_max_load && load < best_load) {
        best_load = load;
        target = s;
        projected = fit;
      }
    }
    if (target != home) {
      idx = candidate;
      break;
    }
  }
  if (target == home) {
    note(c, format("scale-out needed but no slot can absorb a border NF "
                   "under %.2f load: %s",
                   options_.target_max_load, reason.c_str()));
    return;
  }

  const std::string nf_name = sim.chain().node(idx).spec.name;
  note(c, format("%s -> scale-out: moving %s to server %zu "
                 "(projected load %.2f)",
                 reason.c_str(), nf_name.c_str(), target, projected));

  // Loss-free cross-server move: pause, pay the fabric transfer, re-bind,
  // flush.  Mirrors the single-server engine's pause/transfer/resume at
  // rack granularity.
  state.remote_move_in_progress = true;
  sim.pause_node(idx);
  cluster_.kernel().schedule_after(
      options_.remote_migration_cost, [this, c, idx, target, nf_name] {
        ChainSimulator& moved_sim = cluster_.chain_sim(c);
        const std::size_t buffered = moved_sim.buffered_at(idx);
        cluster_.move_node(c, idx, target, Location::kSmartNic);
        moved_sim.resume_node(idx);
        ChainState& done = chains_[c];
        done.remote_move_in_progress = false;
        done.last_action_done = cluster_.kernel().now();
        ++scale_out_moves_;
        note(c, format("scale-out complete: %s now on server %zu (%zu buffered)",
                       nf_name.c_str(), target, buffered));
      });
}

}  // namespace pam
