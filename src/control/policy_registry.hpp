// The policy registry: name → factory + parameter schema for every
// migration policy the control plane can run.
//
// Scenario files, the pam_exp CLI and the experiment runner all select
// policies by name (`pam`, `naive`, `naive-min`, `none`, `scale-in`, or
// anything registered later) and tune them with key=value parameters — no
// recompile, no string switch.  Unknown names and unknown parameter keys
// are strict errors that list what IS registered, replacing the old silent
// fall-back to NoMigrationPolicy.
//
// Adding a policy is a one-file change (docs/ARCHITECTURE.md has the full
// recipe): implement MigrationPolicy, then register a PolicyInfo from the
// same .cpp —
//
//   PAM_REGISTER_MIGRATION_POLICY(my_policy, (PolicyInfo{
//       "my-policy",
//       "one-line summary",
//       {{"knob", 1.0, "what the knob does"}},
//       [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
//         return std::make_unique<MyPolicy>(cfg.get("knob", 1.0));
//       }}))
//
// (Keep the registration in a translation unit that is certainly linked —
// e.g. next to code the binary already calls; a static library may drop an
// otherwise-unreferenced TU together with its registrar.)
//
// The registry is process-wide and single-threaded, like the simulator.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "core/policy.hpp"

namespace pam {

/// A policy selection: registered name plus key=value tuning parameters.
/// Plain data; the inline text form is `NAME` or `NAME:key=val,key=val`.
struct PolicyConfig {
  std::string name;
  /// Ordered so `parse(to_string()) == *this` round-trips exactly.
  std::vector<std::pair<std::string, double>> params;

  [[nodiscard]] bool operator==(const PolicyConfig&) const = default;

  /// True for the "inherit the surrounding default" sentinel.
  [[nodiscard]] bool empty() const noexcept { return name.empty(); }

  /// `params[key]`, or `fallback` when absent (factories pass the schema
  /// default).
  [[nodiscard]] double get(std::string_view key, double fallback) const noexcept;

  /// True when `key` is already set (duplicate detection in both parsers).
  [[nodiscard]] bool contains(std::string_view key) const noexcept;

  /// Inline text form: `pam` or `pam:utilization_limit=0.9,max_migrations=32`.
  [[nodiscard]] std::string to_string() const;

  /// Parses the inline form.  Syntax only — registry validation (known
  /// name/keys) is PolicyRegistry::validate's job.
  [[nodiscard]] static Result<PolicyConfig> parse(std::string_view text);
};

/// One tunable of a registered policy.
struct PolicyParamSpec {
  std::string key;
  double default_value = 0.0;
  std::string description;
  /// Accepted range, inclusive.  Out-of-range or non-finite values are
  /// validation errors, so factories may cast blindly (e.g. to a count).
  double min_value = 0.0;
  double max_value = 1.0e6;
};

/// Everything the registry knows about one policy.
struct PolicyInfo {
  std::string name;     ///< selection key (also the `.scn` / CLI spelling)
  std::string summary;  ///< one line for `pam_exp policies`
  std::vector<PolicyParamSpec> params;  ///< accepted keys + defaults
  /// Builds an instance from a validated config.  Absent params default.
  std::function<std::unique_ptr<MigrationPolicy>(const PolicyConfig&)> factory;
};

class PolicyRegistry {
 public:
  /// The process-wide registry; built-ins are registered on first use.
  [[nodiscard]] static PolicyRegistry& instance();

  /// Registers `info`.  Empty names, missing factories and duplicate names
  /// are rejected (the error names the clash).
  Result<bool> add(PolicyInfo info);

  /// Removes a registration (test isolation for throwaway policies).
  bool remove(std::string_view name);

  [[nodiscard]] const PolicyInfo* find(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const {
    return find(name) != nullptr;
  }

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  /// "naive, naive-min, none, pam, scale-in" — for error messages.
  [[nodiscard]] std::string names_joined(std::string_view separator = ", ") const;

  /// Strict check of `config`: the name must be registered and every
  /// parameter key must be in the policy's schema.  Errors list the
  /// registered policies (unknown name) or the accepted keys (unknown
  /// parameter).
  Result<bool> validate(const PolicyConfig& config) const;

  /// validate() + the factory.  The ONLY way experiment code builds
  /// policies.
  Result<std::unique_ptr<MigrationPolicy>> create(const PolicyConfig& config) const;

 private:
  PolicyRegistry();  ///< registers the built-in policies

  std::map<std::string, PolicyInfo, std::less<>> entries_;
};

/// add() for static registrars: a failure (duplicate name, missing
/// factory) is printed to stderr so a clashing registration can never
/// vanish silently.  Returns whether the registration took effect.
bool register_policy_or_report(PolicyInfo info);

/// Registers a policy at static-initialisation time from the defining
/// translation unit.  `ident` must be unique within the TU; `...` is a
/// parenthesised `PolicyInfo{...}` initialiser (see the file comment for a
/// worked example and the linker caveat).  Name clashes are reported on
/// stderr at process start.
#define PAM_REGISTER_MIGRATION_POLICY(ident, ...)            \
  namespace {                                                \
  const bool pam_policy_registrar_##ident =                  \
      ::pam::register_policy_or_report(__VA_ARGS__);         \
  }

}  // namespace pam
