// The fleet-scale scaling controller.
//
// Controller (controller.hpp) runs the paper's loop for one chain on one
// server and, when a migration is infeasible (both devices hot), can only
// *record* an OpenNF-style scale-out request.  FleetController closes that
// loop for a rack.  The loop itself — period, trigger, cooldown, in-flight
// tracking, typed ControlEvent log — is ControlPlane's; this class is the
// rack specialisation:
//
//   Sensor    — per chain: trailing-window ingress rate + the home slot's
//               ChainAnalyzer over the chain's *resident* view (off-loaded
//               nodes no longer burn home capacity), plus the slot's live
//               device load (co-homed chains can saturate a shared SmartNIC
//               while every individual chain sits below the trigger)
//   Actuator  — feasible plans run on the chain's own loss-free
//               MigrationEngine; infeasible ones trigger cross-server
//               scale-out: pick a crossing-safe SmartNIC border NF (Step 1
//               of PAM), pick the least-loaded target slot that can absorb
//               it below `target_max_load`, and move it there loss-free
//               (pause -> transfer over the rack fabric -> re-bind ->
//               resume)
//
// Policies come from the PolicyRegistry: one shared default plus optional
// per-chain overrides (heterogeneous fleets), both installable through the
// scenario layer's [policy] / per-chain `policy` keys.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chain/chain_analyzer.hpp"
#include "control/control_plane.hpp"
#include "migration/migration_engine.hpp"
#include "sim/cluster_simulator.hpp"

namespace pam {

/// The shared loop's knobs plus the rack-only ones.
struct FleetControllerOptions : ControlPlaneOptions {
  /// A target slot qualifies only while its hottest device is below this.
  double target_max_load = 0.9;
  /// Pause-to-resume cost of one cross-server NF move (state over the rack
  /// fabric + control-plane setup; coarser than the per-blob PCIe model the
  /// single-server engine uses).
  SimTime remote_migration_cost = SimTime::milliseconds(1.0);
};

class FleetController final : private ControlPlane::Sensor,
                              private ControlPlane::Actuator {
 public:
  /// `policy` plans single-server migrations for every chain without a
  /// per-chain override (stateless policies — all of core's — are safe to
  /// share).
  FleetController(ClusterSimulator& cluster, std::unique_ptr<MigrationPolicy> policy,
                  FleetControllerOptions options = {});

  /// Per-chain policy override (heterogeneous fleets); nullptr restores the
  /// shared default.  Call before arm().
  void set_chain_policy(std::size_t c, std::unique_ptr<MigrationPolicy> policy) {
    plane_.set_chain_policy(c, std::move(policy));
  }

  /// Registers the periodic fleet check with the shared kernel.  Call
  /// before ClusterSimulator::run().
  void arm() { plane_.arm(); }

  /// Failure response: evacuates every non-paused NF bound to `server` to
  /// the least-loaded surviving slot, loss-free (pause -> fabric transfer ->
  /// re-bind -> flush), emitting one kEvacuated event per NF.  Survival
  /// outranks the SLO, so evacuation ignores target_max_load.  Call after
  /// ClusterSimulator::fail_server(server); NFs already paused by an
  /// in-flight move are handled by that move's own dead-target abort.
  void on_server_failed(std::size_t server);

  [[nodiscard]] const std::vector<ControlEvent>& events() const noexcept {
    return plane_.events();
  }
  /// Completed single-server (push-aside) migrations across all chains.
  [[nodiscard]] std::size_t migrations_executed() const noexcept;
  /// Completed cross-server border-NF moves.
  [[nodiscard]] std::size_t scale_out_moves() const noexcept {
    return scale_out_moves_;
  }
  /// Completed failure evacuations (one per NF moved off a dead slot).
  [[nodiscard]] std::size_t evacuations() const noexcept { return evacuations_; }

  /// Installs an external hold: while `hold(c)` returns true the loop treats
  /// chain `c` as having an action in flight.  The datacenter orchestrator
  /// uses this so a cross-rack lease and a rack-local move never race on the
  /// same chain.  The predicate is called from this rack's shard thread, so
  /// it must read only barrier-published state.
  void set_external_hold(std::function<bool(std::size_t)> hold) {
    external_hold_ = std::move(hold);
  }
  /// The shared loop (options, per-chain policies, event emission).
  [[nodiscard]] ControlPlane& plane() noexcept { return plane_; }

 private:
  struct ChainState {
    std::unique_ptr<MigrationEngine> engine;
    /// Concurrent cross-server transfers (scale-out plus evacuations — a
    /// server failure can put several of one chain's NFs in flight at once).
    std::size_t remote_moves_in_flight = 0;
  };

  // ControlPlane::Sensor
  [[nodiscard]] ControlPlane::Sample sense(std::size_t c) const override;
  [[nodiscard]] std::string describe_overload(
      std::size_t c, const ControlPlane::Sample& sample) const override;
  [[nodiscard]] ControlPlane::Planned plan(std::size_t c,
                                           const MigrationPolicy& policy,
                                           Gbps offered) const override;

  // ControlPlane::Actuator
  [[nodiscard]] bool in_flight(std::size_t c) const override;
  void execute(std::size_t c, const MigrationPlan& plan,
               std::function<void()> done) override;
  void scale_out(std::size_t c, const std::string& reason, Gbps offered) override;

  /// The chain restricted to nodes still bound to the home slot, plus the
  /// mapping from reduced indices back to real ones.  Off-loaded nodes no
  /// longer consume home capacity, so they must not count against it.
  struct HomeView {
    ServiceChain chain{""};
    std::vector<std::size_t> index_map;  ///< reduced index -> real index
    SimTime built_at = SimTime::nanoseconds(-1);
  };

  /// Builds (or returns the tick's cached) home view of chain `c`.  One
  /// loop tick calls sense -> plan -> scale_out at a single simulated
  /// instant with no placement change in between, so a view built "now" is
  /// valid for the whole tick.
  [[nodiscard]] const HomeView& home_view(std::size_t c) const;

  ClusterSimulator& cluster_;
  FleetControllerOptions options_;
  std::vector<ChainAnalyzer> analyzers_;  ///< one per rack slot
  std::vector<ChainState> chains_;
  /// Finishes one remote transfer of chain `c`: re-bind (unless the target
  /// died mid-flight), resume, anchor the cooldown, emit `kind`.
  void complete_remote_move(std::size_t c, std::size_t node, std::size_t target,
                            ControlEvent::Kind kind);

  mutable std::vector<HomeView> views_;   ///< per-chain per-tick cache
  std::function<bool(std::size_t)> external_hold_;  ///< orchestrator veto
  std::size_t scale_out_moves_ = 0;
  std::size_t evacuations_ = 0;
  ControlPlane plane_;  ///< last member: its Sensor/Actuator are *this
};

}  // namespace pam
