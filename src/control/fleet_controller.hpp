// The fleet-scale scaling controller.
//
// Controller (controller.hpp) runs the paper's loop for one chain on one
// server and, when a migration is infeasible (both devices hot), can only
// *log* an OpenNF-style scale-out request.  FleetController closes that
// loop for a rack: it holds a fleet view — one ChainAnalyzer per server
// plus the cluster's live device load — and when single-server push-aside
// migration cannot relieve a hot slot, the overloaded chain's border NFs
// are actually moved to the least-loaded other server (pause -> transfer
// over the rack fabric -> re-bind -> resume, loss-free like the
// single-server engine).
//
// Per check period, per chain:
//   estimate offered load from the trailing ingress window
//   evaluate the home slot with that server's ChainAnalyzer (home-resident
//   nodes only — off-loaded nodes no longer burn home capacity)
//   overloaded?
//     single-server plan feasible  -> MigrationEngine (unchanged mechanism)
//     infeasible                   -> cross-server scale-out:
//         pick a SmartNIC border NF (crossing-safe, Step 1 of PAM)
//         pick the least-loaded target slot below `target_max_load`
//         move the NF there (takes effect for packets not yet routed)
//
// All decisions land in a timestamped event log, like Controller's.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "chain/chain_analyzer.hpp"
#include "core/policy.hpp"
#include "migration/migration_engine.hpp"
#include "sim/cluster_simulator.hpp"

namespace pam {

struct FleetControllerOptions {
  SimTime period = SimTime::milliseconds(10.0);
  SimTime first_check = SimTime::milliseconds(10.0);
  /// Home-SmartNIC utilisation that arms the policy for a chain.
  double trigger_utilization = 1.0;
  /// Quiet time per chain after a completed action before re-triggering.
  SimTime cooldown = SimTime::milliseconds(20.0);
  /// Trailing window used to estimate each chain's offered load.
  SimTime rate_window = SimTime::milliseconds(5.0);
  /// A target slot qualifies only while its hottest device is below this.
  double target_max_load = 0.9;
  /// Pause-to-resume cost of one cross-server NF move (state over the rack
  /// fabric + control-plane setup; coarser than the per-blob PCIe model the
  /// single-server engine uses).
  SimTime remote_migration_cost = SimTime::milliseconds(1.0);
};

struct FleetEvent {
  SimTime at = SimTime::zero();
  std::size_t chain = 0;
  std::string what;
};

class FleetController {
 public:
  /// `policy` plans single-server migrations for every chain (stateless
  /// policies — all of core's — are safe to share).
  FleetController(ClusterSimulator& cluster, std::unique_ptr<MigrationPolicy> policy,
                  FleetControllerOptions options = {});

  /// Registers the periodic fleet check with the shared kernel.  Call
  /// before ClusterSimulator::run().
  void arm();

  [[nodiscard]] const std::vector<FleetEvent>& events() const noexcept {
    return events_;
  }
  /// Completed single-server (push-aside) migrations across all chains.
  [[nodiscard]] std::size_t migrations_executed() const noexcept;
  /// Completed cross-server border-NF moves.
  [[nodiscard]] std::size_t scale_out_moves() const noexcept {
    return scale_out_moves_;
  }

 private:
  struct ChainState {
    std::unique_ptr<MigrationEngine> engine;
    bool remote_move_in_progress = false;
    SimTime last_action_done = SimTime::nanoseconds(-1);
  };

  void check();
  void check_chain(std::size_t c);
  void note(std::size_t c, std::string what);

  /// The chain restricted to nodes still bound to the home slot, plus the
  /// mapping from reduced indices back to real ones.  Off-loaded nodes no
  /// longer consume home capacity, so they must not count against it.
  [[nodiscard]] ServiceChain home_view(std::size_t c,
                                       std::vector<std::size_t>& index_map) const;

  ClusterSimulator& cluster_;
  std::unique_ptr<MigrationPolicy> policy_;
  FleetControllerOptions options_;
  std::vector<ChainAnalyzer> analyzers_;  ///< one per rack slot
  std::vector<ChainState> chains_;
  std::vector<FleetEvent> events_;
  std::size_t scale_out_moves_ = 0;
};

}  // namespace pam
