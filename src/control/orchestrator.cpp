#include "control/orchestrator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "chain/border.hpp"
#include "common/strings.hpp"

namespace pam {

namespace {

/// The orchestrator's ControlPlane needs *a* policy object (the shared loop
/// plans before falling back to scale-out), but cross-rack placement is not
/// a push-aside problem: every plan is reported infeasible so the loop
/// always routes into Actuator::scale_out, where the lease logic lives.
class CrossRackOnlyPolicy final : public MigrationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "CrossRackLease"; }
  [[nodiscard]] MigrationPlan plan(const ServiceChain& /*chain*/,
                                   const ChainAnalyzer& /*analyzer*/,
                                   Gbps /*ingress_rate*/) const override {
    MigrationPlan out;
    out.policy_name = name();
    out.feasible = false;
    out.infeasibility_reason =
        "home rack saturated; intra-rack placement cannot relieve it";
    return out;
  }
};

}  // namespace

DatacenterOrchestrator::DatacenterOrchestrator(
    DatacenterSimulator& dc, std::vector<FleetController*> racks,
    DatacenterOrchestratorOptions options)
    : dc_(dc),
      racks_(std::move(racks)),
      options_(options),
      cooling_until_(dc.num_chains(), SimTime::zero()),
      next_check_(options.first_check),
      plane_(dc.rack(0).kernel(), *this, *this, dc.num_chains(),
             std::make_unique<CrossRackOnlyPolicy>(), options) {
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    FleetController* controller = racks_[r];
    if (controller == nullptr) {
      continue;
    }
    controller->set_external_hold([this, r](std::size_t local) {
      // Rack-local chain id -> global id: rack r's chains were added in
      // order, so scan the global map for the local index.  Called from the
      // rack's shard thread; holds() reads only barrier-published state.
      for (std::size_t c = 0; c < dc_.num_chains(); ++c) {
        if (dc_.home_rack_of(c) == r && dc_.local_chain_of(c) == local) {
          return holds(c);
        }
      }
      return false;
    });
  }
}

bool DatacenterOrchestrator::holds(std::size_t c) const {
  for (const PendingLease& p : pending_) {
    if (p.chain == c) {
      return true;
    }
  }
  return cooling_until_[c] > last_barrier_;
}

bool DatacenterOrchestrator::rack_pressured(std::size_t r) const {
  bool any_alive = false;
  for (std::size_t slot = 0; slot < dc_.per_rack(); ++slot) {
    const std::size_t gs = dc_.global_server(r, slot);
    if (!dc_.server_alive(gs)) {
      continue;
    }
    any_alive = true;
    const double load = std::max(dc_.server_nic_load(gs), dc_.server_cpu_load(gs));
    if (load < options_.target_max_load) {
      return false;  // this slot can still absorb an intra-rack move
    }
  }
  return any_alive;
}

void DatacenterOrchestrator::on_barrier(SimTime t, bool draining) {
  last_barrier_ = t;
  commit_due(t);
  if (draining) {
    return;  // no new decisions after the horizon; only commits above
  }
  if (t >= next_check_) {
    plane_.check_all();
    while (next_check_ <= t) {
      next_check_ = next_check_ + options_.period;
    }
  }
}

ControlPlane::Sample DatacenterOrchestrator::sense(std::size_t c) const {
  ControlPlane::Sample sample;
  sample.server = dc_.home_server_of(c);
  const std::size_t r = dc_.home_rack_of(c);
  FleetController* rack_controller = r < racks_.size() ? racks_[r] : nullptr;
  if (rack_controller != nullptr &&
      rack_controller->plane().chain_busy_or_cooling(dc_.local_chain_of(c))) {
    sample.has_resident = false;  // the rack tier owns this chain right now
    return sample;
  }
  if (!rack_pressured(r)) {
    sample.has_resident = false;  // intra-rack placement can still help
    return sample;
  }
  sample.offered = dc_.chain_sim(c).observed_ingress_rate(options_.rate_window);
  sample.util.smartnic = dc_.server_nic_load(sample.server);
  sample.util.cpu = dc_.server_cpu_load(sample.server);
  sample.slot_hot = true;  // rack-wide pressure is the trigger
  return sample;
}

std::string DatacenterOrchestrator::describe_overload(
    std::size_t c, const ControlPlane::Sample& sample) const {
  return format(
      "rack %zu saturated (every alive slot >= %.2f); chain %zu home slot %zu "
      "at nic %.2f / cpu %.2f, offered %s",
      dc_.home_rack_of(c), options_.target_max_load, c, sample.server,
      sample.util.smartnic, sample.util.cpu, sample.offered.to_string().c_str());
}

ControlPlane::Planned DatacenterOrchestrator::plan(std::size_t /*c*/,
                                                   const MigrationPolicy& policy,
                                                   Gbps /*offered*/) const {
  // Always infeasible (CrossRackOnlyPolicy): the shared loop falls through
  // to scale_out, which is where cross-rack leases are decided.
  ControlPlane::Planned out;
  out.plan = policy.plan(ServiceChain{""}, ChainAnalyzer{dc_.rack(0).server(0),
                                                         dc_.rack(0).calibration()},
                         Gbps{0.0});
  return out;
}

bool DatacenterOrchestrator::in_flight(std::size_t c) const {
  for (const PendingLease& p : pending_) {
    if (p.chain == c) {
      return true;
    }
  }
  return false;
}

void DatacenterOrchestrator::execute(std::size_t /*c*/,
                                     const MigrationPlan& /*plan*/,
                                     std::function<void()> /*done*/) {
  assert(false && "orchestrator plans are always infeasible");
}

void DatacenterOrchestrator::scale_out(std::size_t c, const std::string& reason,
                                       Gbps offered) {
  ChainSimulator& sim = dc_.chain_sim(c);
  const std::size_t home_rack = dc_.home_rack_of(c);

  // Candidates: the chain's SmartNIC border NFs (crossing-safe, PAM Step 1)
  // that are not paused by another move and not already leased out.
  const BorderSets borders = find_borders(sim.chain());
  std::vector<std::size_t> candidates;
  for (const std::size_t idx : borders.all()) {
    if (!sim.paused(idx) && !sim.node_remote(idx)) {
      candidates.push_back(idx);
    }
  }
  if (candidates.empty()) {
    ControlEvent event;
    event.kind = ControlEvent::Kind::kInfeasible;
    event.chain = c;
    event.server = dc_.home_server_of(c);
    event.detail = format("cross-rack lease needed but no movable border NF: %s",
                          reason.c_str());
    plane_.emit(std::move(event));
    return;
  }

  // Fit-aware target scan over every slot outside the home rack, in global
  // slot order: qualify when the slot's hottest device stays below
  // target_max_load after absorbing the NF, prefer (load, slot)
  // lexicographically — a total order, so the choice is deterministic.
  std::size_t node = 0;
  std::size_t target = dc_.num_servers();
  double projected = 0.0;
  for (const std::size_t candidate : candidates) {
    const Gbps nf_capacity =
        sim.chain().node(candidate).spec.capacity.on(Location::kSmartNic);
    if (nf_capacity.value() <= 0.0) {
      continue;
    }
    const double contribution =
        sim.chain().offered_at(candidate, offered).value() / nf_capacity.value();
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t gs = 0; gs < dc_.num_servers(); ++gs) {
      if (dc_.rack_of(gs) == home_rack || !dc_.server_alive(gs)) {
        continue;
      }
      const double nic = dc_.server_nic_load(gs);
      const double cpu = dc_.server_cpu_load(gs);
      const double fit = std::max(nic + contribution, cpu);
      const double load = std::max(nic, cpu);
      if (fit <= options_.target_max_load && load < best_load) {
        best_load = load;
        target = gs;
        projected = fit;
      }
    }
    if (target != dc_.num_servers()) {
      node = candidate;
      break;
    }
  }
  if (target == dc_.num_servers()) {
    ControlEvent event;
    event.kind = ControlEvent::Kind::kInfeasible;
    event.chain = c;
    event.server = dc_.home_server_of(c);
    event.detail = format(
        "cross-rack lease needed but no slot outside rack %zu can absorb a "
        "border NF under %.2f load: %s",
        home_rack, options_.target_max_load, reason.c_str());
    plane_.emit(std::move(event));
    return;
  }

  const std::string nf_name = sim.chain().node(node).spec.name;
  ControlEvent decided;
  decided.kind = ControlEvent::Kind::kScaleOut;
  decided.chain = c;
  decided.server = target;
  decided.moved_nfs.push_back(nf_name);
  decided.smartnic_utilization = projected;
  decided.detail = format(
      "%s -> cross-rack lease: moving %s to server %zu (rack %zu, projected "
      "load %.2f)",
      reason.c_str(), nf_name.c_str(), target, dc_.rack_of(target), projected);
  plane_.emit(std::move(decided));

  // Pause now; the lease commits at the first barrier after the migration
  // cost (at least one epoch), so no shard ever sees a mid-epoch rebind.
  sim.pause_node(node);
  PendingLease pending;
  pending.chain = c;
  pending.node = node;
  pending.target = target;
  pending.commit_at =
      plane_.now() + std::max(options_.lease_migration_cost, dc_.quantum());
  pending_.push_back(pending);
}

void DatacenterOrchestrator::commit_due(SimTime t) {
  std::vector<PendingLease> remaining;
  remaining.reserve(pending_.size());
  for (const PendingLease& p : pending_) {
    if (t < p.commit_at) {
      remaining.push_back(p);
      continue;
    }
    ChainSimulator& sim = dc_.chain_sim(p.chain);
    const std::string nf_name = sim.chain().node(p.node).spec.name;
    const std::size_t buffered = sim.buffered_at(p.node);
    if (!dc_.server_alive(p.target)) {
      // Target died while the lease was in flight: abort in place,
      // loss-free — buffered packets flush through the home binding.
      sim.resume_node(p.node);
      plane_.complete_action(p.chain);
      cooling_until_[p.chain] = t + options_.cooldown;
      ControlEvent aborted;
      aborted.kind = ControlEvent::Kind::kInfeasible;
      aborted.chain = p.chain;
      aborted.server = p.target;
      aborted.moved_nfs.push_back(nf_name);
      aborted.detail = format(
          "in-flight cross-rack lease of %s aborted: target server %zu died "
          "(%zu buffered flushed in place)",
          nf_name.c_str(), p.target, buffered);
      plane_.emit(std::move(aborted));
      continue;
    }
    const bool committed = dc_.commit_lease(p.chain, p.node, p.target);
    assert(committed);
    (void)committed;
    sim.resume_node(p.node);
    plane_.complete_action(p.chain);
    cooling_until_[p.chain] = t + options_.cooldown;
    ++cross_rack_moves_;
    ControlEvent done;
    done.kind = ControlEvent::Kind::kCrossRackMove;
    done.chain = p.chain;
    done.server = p.target;
    done.moved_nfs.push_back(nf_name);
    done.detail = format(
        "cross-rack lease committed: %s now on server %zu (rack %zu, %zu "
        "buffered flushed over the fabric)",
        nf_name.c_str(), p.target, dc_.rack_of(p.target), buffered);
    plane_.emit(std::move(done));
  }
  pending_ = std::move(remaining);
}

}  // namespace pam
