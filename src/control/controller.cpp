#include "control/controller.hpp"

#include "common/strings.hpp"

namespace pam {

Controller::Controller(ChainSimulator& sim, std::unique_ptr<MigrationPolicy> policy,
                       ControllerOptions options)
    : sim_(sim),
      analyzer_(sim.server(), sim.calibration()),
      engine_(sim),
      plane_(sim.kernel(), *this, *this, /*num_chains=*/1, std::move(policy),
             options) {}

ControlPlane::Sample Controller::sense(std::size_t /*c*/) const {
  ControlPlane::Sample sample;
  sample.offered = sim_.observed_ingress_rate(plane_.options().rate_window);
  sample.util = analyzer_.utilization(sim_.chain(), sample.offered);
  return sample;
}

std::string Controller::describe_overload(std::size_t /*c*/,
                                          const ControlPlane::Sample& sample) const {
  return format("overload detected at %s offered: %s",
                sample.offered.to_string().c_str(), sample.util.describe().c_str());
}

ControlPlane::Planned Controller::plan(std::size_t /*c*/,
                                       const MigrationPolicy& policy,
                                       Gbps offered) const {
  ControlPlane::Planned out;
  out.plan = policy.plan(sim_.chain(), analyzer_, offered);
  if (out.plan.feasible && !out.plan.empty()) {
    const auto projected =
        analyzer_.utilization(out.plan.apply_to(sim_.chain()), offered);
    out.projected_smartnic = projected.smartnic;
    out.projected_cpu = projected.cpu;
  }
  return out;
}

bool Controller::in_flight(std::size_t /*c*/) const { return engine_.busy(); }

void Controller::execute(std::size_t /*c*/, const MigrationPlan& plan,
                         std::function<void()> done) {
  engine_.execute(plan, std::move(done));
}

void Controller::scale_out(std::size_t c, const std::string& reason,
                           Gbps /*offered*/) {
  // One box cannot provision another instance; record the decision once —
  // instance provisioning is outside the single-server data plane.
  if (scale_out_requested_) {
    return;
  }
  scale_out_requested_ = true;
  ControlEvent event;
  event.kind = ControlEvent::Kind::kScaleOut;
  event.chain = c;
  event.detail = "plan infeasible -> scale-out requested: " + reason;
  plane_.emit(std::move(event));
}

}  // namespace pam
