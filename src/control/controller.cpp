#include "control/controller.hpp"

#include "common/strings.hpp"

namespace pam {

Controller::Controller(ChainSimulator& sim, std::unique_ptr<MigrationPolicy> policy,
                       ControllerOptions options)
    : sim_(sim),
      policy_(std::move(policy)),
      options_(options),
      analyzer_(sim.server(), sim.calibration()),
      engine_(sim) {}

void Controller::arm() {
  sim_.schedule_periodic(options_.first_check, options_.period, [this] { check(); });
}

void Controller::note(std::string what) {
  events_.push_back(ControllerEvent{sim_.now(), std::move(what)});
}

void Controller::check() {
  if (engine_.busy()) {
    return;  // one migration at a time
  }
  if (last_migration_done_.ns() >= 0 &&
      sim_.now() - last_migration_done_ < options_.cooldown) {
    return;
  }
  const Gbps rate = sim_.observed_ingress_rate(options_.rate_window);
  const auto util = analyzer_.utilization(sim_.chain(), rate);
  if (util.smartnic < options_.trigger_utilization) {
    // Calm direction: pull pushed-aside vNFs back when well under the
    // trigger and a scale-in policy is installed.
    if (scale_in_policy_ != nullptr &&
        util.smartnic < options_.scale_in_below_utilization) {
      const MigrationPlan back = scale_in_policy_->plan(sim_.chain(), analyzer_, rate);
      if (back.feasible && !back.empty()) {
        note(back.describe());
        engine_.execute(back, [this] {
          last_migration_done_ = sim_.now();
          note("scale-in complete");
        });
      }
    }
    return;
  }
  note(format("overload detected at %s offered: %s", rate.to_string().c_str(),
              util.describe().c_str()));

  const MigrationPlan plan = policy_->plan(sim_.chain(), analyzer_, rate);
  if (!plan.feasible) {
    // Both devices hot: the paper defers to OpenNF-style scale-out ("the
    // network operator must start another instance").  Record the decision;
    // instance provisioning is outside the single-server data plane.
    if (!scale_out_requested_) {
      scale_out_requested_ = true;
      note("plan infeasible -> scale-out requested: " + plan.infeasibility_reason);
    }
    return;
  }
  if (plan.empty()) {
    return;
  }
  note(plan.describe());
  engine_.execute(plan, [this] {
    last_migration_done_ = sim_.now();
    note(format("migration complete (%zu step(s))", engine_.records().size()));
  });
}

}  // namespace pam
