// OpenNF-style scale-out fallback [1].
//
// "If both CPU and SmartNIC are overloaded, which rarely happens, the
// network operator must start another instance to alleviate the hot spot."
// ScaleOutPlanner answers the operator's sizing question: how many chain
// replicas (each on its own SmartNIC+CPU server) are needed for the offered
// load, and how should flows be split across them.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/chain_analyzer.hpp"

namespace pam {

struct ScaleOutDecision {
  std::size_t replicas = 1;        ///< total instances (including the original)
  Gbps per_replica_rate;           ///< load each replica carries after the split
  double per_replica_bottleneck = 0.0;  ///< worst device utilisation per replica
  std::vector<double> split_weights;    ///< per-replica traffic share, sums to 1
  std::string rationale;
};

class ScaleOutPlanner {
 public:
  /// `headroom` keeps replicas below full utilisation (0.9 leaves 10%).
  explicit ScaleOutPlanner(double headroom = 0.9) : headroom_(headroom) {}

  /// Smallest replica count such that an even flow split keeps every
  /// replica's bottleneck utilisation below `headroom`.
  [[nodiscard]] ScaleOutDecision plan(const ServiceChain& chain,
                                      const ChainAnalyzer& analyzer,
                                      Gbps offered) const;

 private:
  double headroom_;
};

}  // namespace pam
