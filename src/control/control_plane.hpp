// The control-plane API: ONE sense → decide → act loop for every controller.
//
// The paper's contribution is a decision loop — "the network administrators
// can periodically query the load of SmartNIC and CPU and execute the PAM
// border vNF selection algorithm" — and the repo used to carry two divergent
// copies of it (single-server Controller, rack-scale FleetController) with
// separate trigger/cooldown/event code.  ControlPlane owns the loop once:
//
//   every `period`, per managed chain:
//     skip while an action is in flight or the cooldown is running
//     Sensor::sense    — offered load (trailing window) + analytic
//                        utilisation of the chain's resident view
//     hot?             — chain demand >= trigger, or the shared slot is hot
//       Sensor::plan   — run the installed MigrationPolicy on that view
//       feasible       — Actuator::execute (loss-free migration engine)
//       infeasible     — Actuator::scale_out (record the OpenNF request on
//                        one box; actually move a border NF cross-server in
//                        a rack)
//     calm?            — optionally run the scale-in policy (pull pushed-
//                        aside vNFs back to the SmartNIC)
//
// Controller and FleetController are thin specialisations: they implement
// the Sensor (what "load" and "the chain" mean locally) and the Actuator
// (what "migrate" and "scale out" do locally) and delegate everything else
// here.  Every decision is recorded as a typed ControlEvent — machine-
// readable telemetry serialised into the `control_events` JSON section by
// the experiment layer (docs/REPRODUCING.md documents the schema).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chain/chain_analyzer.hpp"
#include "core/migration_plan.hpp"
#include "core/policy.hpp"
#include "sim/simulation_kernel.hpp"

namespace pam {

/// One control-plane decision, typed for machines and narrated for humans.
struct ControlEvent {
  /// What the loop decided.  Serialised names (JSON `kind`) are listed next
  /// to each enumerator; `to_string`/`control_event_kind_from_string`
  /// convert.
  enum class Kind : std::uint8_t {
    kTriggered,        ///< "triggered": overload detected, policy armed
    kPlanned,          ///< "planned": feasible migration plan handed to the engine
    kMigrated,         ///< "migrated": an executed plan completed
    kInfeasible,       ///< "infeasible": no plan (or move) could relieve the hot spot
    kScaleOut,         ///< "scale-out": scale-out requested / decided
    kScaleIn,          ///< "scale-in": calm-direction plan handed to the engine
    kCrossServerMove,  ///< "cross-server-move": a border NF landed on another server
    kEvacuated,        ///< "evacuated": an NF moved off a failed server, loss-free
    kCrossRackMove,    ///< "cross_rack_move": a border NF leased to another rack
  };

  SimTime at = SimTime::zero();  ///< simulated time of the decision
  Kind kind = Kind::kTriggered;
  std::size_t chain = 0;   ///< managed-chain index (0 on a single box)
  std::size_t server = 0;  ///< home slot; target slot for scale-out/cross-server events
  /// NFs moved by this decision, in plan order (empty for pure observations).
  std::vector<std::string> moved_nfs;
  /// Observed (kTriggered) or projected-after-the-action utilisations.
  double smartnic_utilization = 0.0;
  double cpu_utilization = 0.0;
  std::string detail;  ///< human-readable narration (the old free-text `what`)
};

/// Serialised name of `kind` (e.g. "cross-server-move").
[[nodiscard]] std::string_view to_string(ControlEvent::Kind kind) noexcept;
/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<ControlEvent::Kind> control_event_kind_from_string(
    std::string_view name) noexcept;
/// Every kind, in declaration order — for docs, CLIs and CI validators.
[[nodiscard]] const std::vector<ControlEvent::Kind>& all_control_event_kinds();

/// The shared loop's knobs.  Identical semantics on one box and on a rack;
/// rack-only knobs (target slot ceiling, fabric cost) live with
/// FleetController.
struct ControlPlaneOptions {
  SimTime period = SimTime::milliseconds(10.0);
  SimTime first_check = SimTime::milliseconds(10.0);
  /// SmartNIC utilisation that arms the policy.
  double trigger_utilization = 1.0;
  /// Quiet time per chain after a completed action before re-triggering.
  SimTime cooldown = SimTime::milliseconds(20.0);
  /// Trailing window used to estimate the offered load.
  SimTime rate_window = SimTime::milliseconds(5.0);

  /// Bidirectional placement: when set, the scale-in policy (see
  /// ControlPlane::set_scale_in_policy) runs whenever the SmartNIC sits
  /// *below* this threshold, returning pushed-aside vNFs.  Keep it well
  /// under the overload trigger to avoid migration ping-pong.
  double scale_in_below_utilization = 0.0;  ///< 0 disables scale-in
};

class ControlPlane {
 public:
  /// One tick's sensor reading for one chain.
  struct Sample {
    /// False when nothing of the chain is resident on its home slot
    /// (everything already off-loaded) — the loop skips the tick.
    bool has_resident = true;
    Gbps offered{0.0};        ///< trailing-window ingress estimate
    UtilizationReport util;   ///< analytic utilisation of the resident view
    /// Live shared-slot overload (co-homed chains can saturate a slot while
    /// each chain sits below the trigger).  Always false on a single box.
    bool slot_hot = false;
    std::size_t server = 0;   ///< home slot id, stamped into events
  };

  /// A policy evaluation against the sensor's chain view.  Step indices in
  /// `plan` are REAL chain indices (sensors working on a reduced view remap
  /// before returning).
  struct Planned {
    MigrationPlan plan;
    /// Post-plan utilisation of the view (feasible, non-empty plans only).
    double projected_smartnic = 0.0;
    double projected_cpu = 0.0;
  };

  /// What the loop reads: offered load and the ChainAnalyzer view of each
  /// managed chain.  Implementations must not mutate simulation state.
  class Sensor {
   public:
    virtual ~Sensor() = default;
    /// Current reading for chain `c`.
    [[nodiscard]] virtual Sample sense(std::size_t c) const = 0;
    /// Human narration of an overload reading (kTriggered event detail).
    [[nodiscard]] virtual std::string describe_overload(std::size_t c,
                                                        const Sample& sample) const = 0;
    /// Runs `policy` against the same view sense() evaluated.
    [[nodiscard]] virtual Planned plan(std::size_t c, const MigrationPolicy& policy,
                                       Gbps offered) const = 0;
  };

  /// What the loop drives: plan execution and the scale-out fallback.
  class Actuator {
   public:
    virtual ~Actuator() = default;
    /// True while chain `c` has a migration or cross-server move executing.
    [[nodiscard]] virtual bool in_flight(std::size_t c) const = 0;
    /// Executes `plan` loss-free; must invoke `done` exactly once when the
    /// last step completes.
    virtual void execute(std::size_t c, const MigrationPlan& plan,
                         std::function<void()> done) = 0;
    /// Push-aside cannot relieve the hot spot (`reason`): record an
    /// OpenNF-style request (single box) or move a border NF to another
    /// server (rack).  Implementations emit their own kInfeasible /
    /// kScaleOut / kCrossServerMove events via emit()/complete_action().
    virtual void scale_out(std::size_t c, const std::string& reason, Gbps offered) = 0;
  };

  /// `sensor` and `actuator` must outlive the plane (they are normally the
  /// owning controller itself).  `policy` plans relieving migrations for
  /// every chain unless a per-chain override is installed.
  ControlPlane(SimulationKernel& kernel, Sensor& sensor, Actuator& actuator,
               std::size_t num_chains, std::unique_ptr<MigrationPolicy> policy,
               ControlPlaneOptions options = {});

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Installs the calm-direction policy (see
  /// ControlPlaneOptions::scale_in_below_utilization).
  void set_scale_in_policy(std::unique_ptr<MigrationPolicy> policy) {
    scale_in_policy_ = std::move(policy);
  }

  /// Per-chain policy override (heterogeneous fleets); nullptr restores the
  /// shared default.
  void set_chain_policy(std::size_t c, std::unique_ptr<MigrationPolicy> policy);

  /// The policy that plans for chain `c` (override or shared default).
  [[nodiscard]] const MigrationPolicy& policy(std::size_t c) const;

  /// Registers the periodic check with the kernel.  Call before the run.
  void arm();

  /// One immediate sweep over all chains (what the periodic tick runs);
  /// exposed so harnesses can drive the loop without a traffic source.
  void check_all();

  [[nodiscard]] const std::vector<ControlEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const ControlPlaneOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t num_chains() const noexcept { return chains_.size(); }
  [[nodiscard]] SimTime now() const noexcept { return kernel_.now(); }

  /// Appends `event` stamped with the current simulated time.  Public so
  /// Actuator implementations can record their asynchronous outcomes.
  void emit(ControlEvent event);

  /// Marks chain `c`'s action finished: anchors the cooldown at now().
  /// Actuators call this from completion callbacks of asynchronous moves.
  void complete_action(std::size_t c);

  /// True while chain `c` has an action in flight or its cooldown running —
  /// the mutual-exclusion signal a co-managing control tier (the datacenter
  /// orchestrator above, the rack controller below) checks before acting on
  /// the same chain.  Safe only when this plane's kernel is quiescent
  /// (single-kernel mode, or at an epoch barrier).
  [[nodiscard]] bool chain_busy_or_cooling(std::size_t c) const;

 private:
  struct ChainState {
    SimTime last_action_done = SimTime::nanoseconds(-1);  ///< <0: never acted
  };

  void check(std::size_t c);

  SimulationKernel& kernel_;
  Sensor& sensor_;
  Actuator& actuator_;
  std::unique_ptr<MigrationPolicy> policy_;
  std::unique_ptr<MigrationPolicy> scale_in_policy_;
  std::vector<std::unique_ptr<MigrationPolicy>> chain_policies_;  ///< overrides
  ControlPlaneOptions options_;
  std::vector<ChainState> chains_;
  std::vector<ControlEvent> events_;
};

}  // namespace pam
