#include "control/policy_registry.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/strings.hpp"
#include "core/naive_policy.hpp"
#include "core/pam_policy.hpp"
#include "core/scale_in_policy.hpp"

namespace pam {

double PolicyConfig::get(std::string_view key, double fallback) const noexcept {
  for (const auto& [param_key, value] : params) {
    if (param_key == key) {
      return value;
    }
  }
  return fallback;
}

bool PolicyConfig::contains(std::string_view key) const noexcept {
  for (const auto& [param_key, value] : params) {
    if (param_key == key) {
      return true;
    }
  }
  return false;
}

std::string PolicyConfig::to_string() const {
  std::string out = name;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? ":" : ",";
    out += params[i].first;
    out += "=";
    out += format_double_shortest(params[i].second);
  }
  return out;
}

Result<PolicyConfig> PolicyConfig::parse(std::string_view text) {
  text = trim(text);
  PolicyConfig out;
  const std::size_t colon = text.find(':');
  out.name = std::string{trim(text.substr(0, colon))};
  if (out.name.empty()) {
    return Error{"policy: empty name"};
  }
  if (colon == std::string_view::npos) {
    return out;
  }
  // Strict: after a ':' every comma-separated item must be key=NUMBER, so a
  // bare "pam:", a trailing comma, or "a=1,,b=2" all fail rather than
  // silently dropping parameters.
  std::string_view rest = text.substr(colon + 1);
  while (true) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = trim(rest.substr(0, comma));
    const std::size_t eq = item.find('=');
    double value = 0.0;
    if (item.empty() || eq == std::string_view::npos || eq == 0 ||
        !parse_double_strict(trim(item.substr(eq + 1)), value)) {
      return Error{format("policy '%s': expected key=NUMBER, got '%.*s'",
                          out.name.c_str(), static_cast<int>(item.size()),
                          item.data())};
    }
    const std::string key{trim(item.substr(0, eq))};
    if (out.contains(key)) {
      return Error{format("policy '%s': duplicate parameter '%s'",
                          out.name.c_str(), key.c_str())};
    }
    out.params.emplace_back(key, value);
    if (comma == std::string_view::npos) {
      break;
    }
    rest = rest.substr(comma + 1);
  }
  return out;
}

bool register_policy_or_report(PolicyInfo info) {
  auto result = PolicyRegistry::instance().add(std::move(info));
  if (!result) {
    std::fprintf(stderr, "pam: policy registration failed: %s\n",
                 result.error().what().c_str());
    return false;
  }
  return true;
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

PolicyRegistry::PolicyRegistry() {
  // The built-ins live here — the same TU as instance() — so a static-lib
  // link can never strip them.  Out-of-tree policies use
  // PAM_REGISTER_MIGRATION_POLICY from their own .cpp.
  (void)add({"none",
             "never migrate (the paper's 'Original' configuration)",
             {},
             [](const PolicyConfig&) -> std::unique_ptr<MigrationPolicy> {
               return std::make_unique<NoMigrationPolicy>();
             }});
  (void)add({"pam",
             "Push Aside Migration: move border vNFs, never add a crossing",
             {{"utilization_limit", 1.0, "device utilisation treated as full (Eq. 2/3)",
               0.01, 2.0},
              {"max_migrations", 64.0, "safety bound on moves per invocation",
               0.0, 4096.0}},
             [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
               PamOptions options;
               options.utilization_limit = cfg.get("utilization_limit", 1.0);
               options.max_migrations =
                   static_cast<std::size_t>(cfg.get("max_migrations", 64.0));
               return std::make_unique<PamPolicy>(options);
             }});
  (void)add({"naive",
             "UNO-style baseline: migrate the bottleneck vNF",
             {{"utilization_limit", 1.0, "device utilisation treated as full",
               0.01, 2.0}},
             [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
               return std::make_unique<NaiveBottleneckPolicy>(
                   cfg.get("utilization_limit", 1.0));
             }});
  (void)add({"naive-min",
             "poster-wording baseline: migrate the min-capacity vNF",
             {{"utilization_limit", 1.0, "device utilisation treated as full",
               0.01, 2.0}},
             [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
               return std::make_unique<NaiveMinCapacityPolicy>(
                   cfg.get("utilization_limit", 1.0));
             }});
  (void)add({"scale-in",
             "PAM in reverse: pull pushed-aside vNFs back to the SmartNIC",
             {{"smartnic_ceiling", 0.8, "post-pull SmartNIC ceiling (hysteresis)",
               0.0, 1.0},
              {"max_migrations", 64.0, "safety bound on moves per invocation",
               0.0, 4096.0}},
             [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
               ScaleInOptions options;
               options.smartnic_ceiling = cfg.get("smartnic_ceiling", 0.8);
               options.max_migrations =
                   static_cast<std::size_t>(cfg.get("max_migrations", 64.0));
               return std::make_unique<ScaleInPolicy>(options);
             }});
}

Result<bool> PolicyRegistry::add(PolicyInfo info) {
  if (info.name.empty()) {
    return Error{"policy registration: empty name"};
  }
  if (info.factory == nullptr) {
    return Error{format("policy '%s': registration without a factory",
                        info.name.c_str())};
  }
  const auto [it, inserted] = entries_.try_emplace(info.name, std::move(info));
  if (!inserted) {
    return Error{format("policy '%s' is already registered", it->first.c_str())};
  }
  return true;
}

bool PolicyRegistry::remove(std::string_view name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return false;
  }
  entries_.erase(it);
  return true;
}

const PolicyInfo* PolicyRegistry::find(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, info] : entries_) {
    out.push_back(name);
  }
  return out;  // std::map iterates sorted
}

std::string PolicyRegistry::names_joined(std::string_view separator) const {
  std::string out;
  for (const auto& [name, info] : entries_) {
    if (!out.empty()) {
      out += separator;
    }
    out += name;
  }
  return out;
}

Result<bool> PolicyRegistry::validate(const PolicyConfig& config) const {
  const PolicyInfo* info = find(config.name);
  if (info == nullptr) {
    return Error{format("unknown policy '%s' (registered: %s)",
                        config.name.c_str(), names_joined().c_str())};
  }
  for (const auto& [key, value] : config.params) {
    const auto spec = std::find_if(
        info->params.begin(), info->params.end(),
        [&key = key](const PolicyParamSpec& p) { return p.key == key; });
    if (spec == info->params.end()) {
      std::string accepted;
      for (const auto& p : info->params) {
        if (!accepted.empty()) {
          accepted += ", ";
        }
        accepted += p.key;
      }
      const std::string hint = accepted.empty()
                                   ? std::string{"takes no parameters"}
                                   : format("accepts: %s", accepted.c_str());
      return Error{format("policy '%s': unknown parameter '%s' (%s)",
                          config.name.c_str(), key.c_str(), hint.c_str())};
    }
    // Range check (rejects NaN too): factories may cast without re-checking.
    if (!(value >= spec->min_value && value <= spec->max_value)) {
      return Error{format(
          "policy '%s': parameter '%s' = %s out of range [%s, %s]",
          config.name.c_str(), key.c_str(), format_double_shortest(value).c_str(),
          format_double_shortest(spec->min_value).c_str(),
          format_double_shortest(spec->max_value).c_str())};
    }
  }
  return true;
}

Result<std::unique_ptr<MigrationPolicy>> PolicyRegistry::create(
    const PolicyConfig& config) const {
  auto valid = validate(config);
  if (!valid) {
    return valid.error();
  }
  return find(config.name)->factory(config);
}

}  // namespace pam
