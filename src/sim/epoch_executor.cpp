#include "sim/epoch_executor.hpp"

#include <algorithm>
#include <cassert>

namespace pam {

EpochExecutor::EpochExecutor(std::size_t threads, std::size_t shards)
    : shards_(shards) {
  assert(threads > 0 && shards > 0);
  // More threads than shards would only idle; the caller's thread is
  // worker 0, so only threads-1 std::threads are spawned.
  const std::size_t effective = std::min(threads, shards);
  workers_.reserve(effective > 0 ? effective - 1 : 0);
  for (std::size_t w = 1; w < effective; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

EpochExecutor::~EpochExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void EpochExecutor::run_slice(std::size_t worker_index,
                              const std::function<void(std::size_t)>& shard_work) {
  const std::size_t stride = workers_.size() + 1;
  for (std::size_t s = worker_index; s < shards_; s += stride) {
    shard_work(s);
  }
}

void EpochExecutor::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* work = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = epoch_;
      work = work_;
    }
    run_slice(worker_index, *work);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
    }
    done_cv_.notify_one();
  }
}

void EpochExecutor::run_epoch(const std::function<void(std::size_t)>& shard_work) {
  if (workers_.empty()) {
    // threads == 1 (or a single shard): fully inline, no synchronization.
    run_slice(0, shard_work);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    work_ = &shard_work;
    outstanding_ = workers_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  run_slice(0, shard_work);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  work_ = nullptr;
}

}  // namespace pam
