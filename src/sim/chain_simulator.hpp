// Discrete-event simulator of one service chain on one SmartNIC/CPU server.
//
// Mapping from the physical system to the model (DESIGN.md §2):
//
//   SmartNIC NPU complex  -> one FcfsServer; a packet visiting NF i on it
//                            occupies the server for
//                            load_factor x size x 8 / θ^S_i
//   CPU complex           -> one FcfsServer, same rule with θ^C_i; also
//                            serves per-crossing driver/DMA work
//   PCIe link             -> FcfsServer for serialisation + a pure delay of
//                            PcieLink::fixed_cost() per crossing
//   NF software overhead  -> pure delay (Calibration::nf_overhead) per hop;
//                            pipeline latency, not server occupancy
//
// With these rules a device saturates exactly when the paper's linear
// utilisation Σ θ_cur/θ^D_i reaches 1 — the DES realises the analytic model
// and adds what the closed form cannot: queueing, drop-tail loss, transient
// behaviour during migrations.
//
// Functional NFs (real classification/rewriting/counting on real header
// bytes) run at service completion, so behavioural tests and performance
// tests exercise one code path.
//
// The engine guts (event queue, packet pool, warmup/horizon/drain, periodic
// scheduling) live in SimulationKernel.  A ChainSimulator either owns a
// private kernel (standalone mode — the historical behaviour, public API
// unchanged) or embeds into a shared kernel + per-rack-slot ServerDevices
// (cluster mode, see sim/cluster_simulator.hpp).  In cluster mode individual
// nodes can be re-bound to *other* rack slots at runtime (cross-server
// scale-out); a packet whose next hop lives on a different server pays a
// fixed inter-server forwarding latency and re-enters at that server's
// SmartNIC side.
//
// Determinism: single-threaded, seeded, stable event ordering — identical
// inputs give bit-identical reports.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "chain/calibration.hpp"
#include "chain/service_chain.hpp"
#include "device/server.hpp"
#include "nf/network_function.hpp"
#include "packet/packet_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/fcfs_server.hpp"
#include "sim/sim_report.hpp"
#include "sim/simulation_kernel.hpp"
#include "trafficgen/traffic_source_config.hpp"

namespace pam {

class ChainSimulator {
 public:
  /// Standalone mode: a private SimulationKernel and ServerDevices are
  /// created for this chain.  `server` must outlive the simulator; its
  /// PcieLink counters are updated during the run.
  ChainSimulator(ServiceChain chain, Server& server, TrafficSourceConfig traffic,
                 Calibration calibration = Calibration::defaults());

  /// Embedded (cluster) mode: advance on a shared `kernel` and contend for
  /// a shared rack slot's `devices`.  `home_server_id` names the slot for
  /// reporting and cross-server routing.  All referenced objects must
  /// outlive the simulator.  Drive with start() + kernel.run() +
  /// build_report() instead of run().
  ChainSimulator(SimulationKernel& kernel, ServerDevices& devices,
                 std::size_t home_server_id, ServiceChain chain, Server& server,
                 TrafficSourceConfig traffic,
                 Calibration calibration = Calibration::defaults());

  ~ChainSimulator();

  ChainSimulator(const ChainSimulator&) = delete;
  ChainSimulator& operator=(const ChainSimulator&) = delete;

  /// Runs for `duration` of simulated time; metrics cover [warmup, duration].
  /// In-flight packets are drained (unmetered) after the horizon so packet
  /// conservation is exact.  Call once per simulator instance.  Standalone
  /// mode only — embedded simulators are driven by their shared kernel.
  [[nodiscard]] SimReport run(SimTime duration, SimTime warmup = SimTime::milliseconds(20));

  // --- embedded-mode driving (cluster) -------------------------------------

  /// Schedules the first traffic arrival.  Called by ClusterSimulator before
  /// the shared kernel runs (standalone run() does this itself).
  void start();

  /// Assembles the SimReport from the current counters; valid after the
  /// kernel's run completed.  run() == start() + kernel.run() + this.
  [[nodiscard]] SimReport build_report() const;

  // --- controller / migration-engine API -----------------------------------

  [[nodiscard]] SimTime now() const noexcept { return kernel_->now(); }
  [[nodiscard]] const ServiceChain& chain() const noexcept { return chain_; }
  [[nodiscard]] Server& server() noexcept { return *server_; }
  [[nodiscard]] const Calibration& calibration() const noexcept { return calibration_; }
  [[nodiscard]] SimulationKernel& kernel() noexcept { return *kernel_; }

  void schedule_at(SimTime at, std::function<void()> fn);
  void schedule_after(SimTime delay, std::function<void()> fn);
  /// Periodic callback every `period` starting at `start`; stops when the
  /// run's horizon is reached.  One shared implementation for all callers:
  /// SimulationKernel::schedule_periodic.
  void schedule_periodic(SimTime start, SimTime period, std::function<void()> fn);

  /// The functional NF instance at chain position i.
  [[nodiscard]] NetworkFunction& nf(std::size_t i) { return *nfs_.at(i); }
  /// Swap in a new instance (the migration engine's restore step).
  void replace_nf(std::size_t i, std::unique_ptr<NetworkFunction> fresh);

  /// Re-place node i (takes effect for packets not yet routed to it).
  void set_node_location(std::size_t i, Location loc);

  // --- cross-server placement (cluster mode) -------------------------------

  /// Re-bind node i to another rack slot (cross-server scale-out).  Takes
  /// effect for packets not yet routed to it; `devices`/`hw` must outlive
  /// the simulator.
  void set_node_server(std::size_t i, std::size_t server_id,
                       ServerDevices& devices, Server& hw);
  [[nodiscard]] std::size_t node_server(std::size_t i) const {
    return bindings_.at(i).server;
  }
  [[nodiscard]] std::size_t home_server() const noexcept { return home_.server; }
  /// Count of nodes currently bound away from the home slot.
  [[nodiscard]] std::size_t nodes_off_home() const noexcept;

  /// One-way forwarding latency between rack slots (default 50 us).
  void set_inter_server_latency(SimTime latency) noexcept {
    inter_server_latency_ = latency;
  }

  /// Traffic-source active window (churn scenarios): the first arrival is
  /// scheduled at `start`, and the source emits nothing at or after `stop`
  /// (negative stop = the tenant never departs).  Call before start().
  /// In-flight packets still drain normally after departure.
  void set_active_window(SimTime start, SimTime stop) noexcept {
    active_start_ = start;
    active_stop_ = stop;
  }

  /// Pause: packets arriving at node i are buffered, not processed.
  void pause_node(std::size_t i);
  /// Resume: flushes the buffer through the node at its current location.
  void resume_node(std::size_t i);
  [[nodiscard]] bool paused(std::size_t i) const { return paused_.at(i); }
  [[nodiscard]] std::size_t buffered_at(std::size_t i) const {
    return buffers_.at(i).size();
  }

  /// Ingress rate observed over the trailing window (controller input).
  [[nodiscard]] Gbps observed_ingress_rate(SimTime window = SimTime::milliseconds(10)) const;

  /// Total packets buffered across all pause windows so far.
  [[nodiscard]] std::uint64_t total_buffered() const noexcept { return total_buffered_; }

  /// Capture every frame delivered at egress into `sink` (with the
  /// simulated delivery timestamp).  Pass nullptr to stop capturing.  The
  /// sink must outlive the run.
  void capture_egress(PacketTrace* sink) noexcept { capture_ = sink; }

  // --- cross-rack leases (sharded datacenter mode) --------------------------
  //
  // A DatacenterOrchestrator can lease one of this chain's nodes to a slot
  // on another rack (a different kernel shard).  The home simulator then
  // serializes packets reaching that node onto the shard fabric instead of
  // processing them locally; the fabric hands the visit's outcome back via
  // resume_from_remote.  In flight across the fabric, a packet exists only
  // as its serialized form — the home Packet object returns to the pool and
  // a fresh one is materialized on return — but it stays counted in
  // in_flight_ throughout, so conservation is exact.

  /// Outcome of one remote visit, as reported back by the fabric.
  struct RemoteReturn {
    bool passed = false;
    /// 1 = drop-tail at the host SmartNIC, 2 = policy drop by the leased NF
    /// (meaningful only when !passed; mirrors FabricFrame::Outcome).
    int drop = 0;
    std::span<const std::uint8_t> bytes;  ///< the frame after the remote NF ran
    std::uint64_t packet_id = 0;
    SimTime ingress_time;
    std::uint32_t pcie_crossings = 0;
    std::uint32_t hops = 0;
  };

  /// Installs the fabric send hook: every packet reaching a remote node is
  /// handed to `fn` (which serializes it into the shard mailbox) and its
  /// home buffer returns to the pool.
  void set_fabric_egress(std::function<void(const Packet&, std::size_t)> fn) {
    fabric_egress_ = std::move(fn);
  }

  /// Marks node i as leased to another rack.  Takes effect for packets not
  /// yet routed to it; requires a fabric hook before traffic reaches it.
  void set_node_remote(std::size_t i, bool remote) { remote_.at(i) = remote; }
  [[nodiscard]] bool node_remote(std::size_t i) const { return remote_.at(i); }
  /// Count of nodes currently leased to other racks.
  [[nodiscard]] std::size_t nodes_remote() const noexcept;

  /// Detaches the functional NF instance at i so it can move into the lease
  /// on the host rack (the NF's state travels with it — same rule as
  /// intra-rack migration).  Mark the node remote before packets flow.
  [[nodiscard]] std::unique_ptr<NetworkFunction> take_nf(std::size_t i) {
    return std::move(nfs_.at(i));
  }

  /// Re-materializes a packet returning from its remote visit and advances
  /// it past node i; remote drops are charged to home counters.
  void resume_from_remote(std::size_t i, const RemoteReturn& ret);

  /// Packets sent over the cross-rack fabric by this chain.
  [[nodiscard]] std::uint64_t cross_rack_hops() const noexcept {
    return cross_rack_hops_;
  }

 private:
  /// Which rack slot a node (or virtual endpoint) executes on.
  struct NodeBinding {
    std::size_t server = 0;
    ServerDevices* devices = nullptr;
    Server* hw = nullptr;
  };

  /// A packet's current position between hops: rack slot + device side.
  struct Hop {
    std::size_t server = 0;
    Location side = Location::kSmartNic;
  };

  struct Parked {
    Packet* pkt;
    Hop at;
  };

  void schedule_next_arrival();
  void schedule_replay_arrival();
  void inject(std::size_t size_bytes);
  void inject_frame(std::span<const std::uint8_t> frame);
  void account_injection(Packet* p);
  void advance(Packet* p, std::size_t idx, Hop from);
  void send_to_fabric(Packet* p, std::size_t idx);
  void process_node(Packet* p, std::size_t idx);
  void cross_pcie(Packet* p, const NodeBinding& binding,
                  std::function<void()> continuation);
  void forward_to_server(Packet* p, std::size_t to_server,
                         std::function<void(Hop)> continuation);
  void deliver(Packet* p);
  void drop(Packet* p, std::uint64_t& counter);
  void finish(Packet* p);
  [[nodiscard]] bool metering() const noexcept { return kernel_->metering(); }
  [[nodiscard]] PacketPool& pool() noexcept { return kernel_->pool(); }

  ServiceChain chain_;
  Server* server_;
  Calibration calibration_;
  TrafficSourceConfig traffic_;

  /// Standalone mode owns its engine and rack slot; embedded mode borrows.
  std::unique_ptr<SimulationKernel> owned_kernel_;
  SimulationKernel* kernel_;
  std::unique_ptr<ServerDevices> owned_devices_;
  NodeBinding home_;                   ///< home rack slot (ingress/egress side)
  std::vector<NodeBinding> bindings_;  ///< per-node execution slot
  SimTime inter_server_latency_ = SimTime::microseconds(50.0);
  SimTime active_start_ = SimTime::zero();
  SimTime active_stop_ = SimTime::nanoseconds(-1);  ///< negative: never stops

  std::vector<std::unique_ptr<NetworkFunction>> nfs_;
  std::vector<bool> paused_;
  std::vector<bool> remote_;  ///< node leased to another rack (datacenter mode)
  std::function<void(const Packet&, std::size_t)> fabric_egress_;
  std::vector<std::vector<Parked>> buffers_;

  struct NodeStats {
    std::uint64_t packets = 0;
    LatencyRecorder residence;  ///< queue wait + service per visit
  };
  std::vector<NodeStats> node_stats_;

  FlowGenerator flowgen_;
  Rng rng_;

  bool ran_ = false;

  // accounting
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t dropped_queue_nic_ = 0;
  std::uint64_t dropped_queue_cpu_ = 0;
  std::uint64_t dropped_queue_pcie_ = 0;
  std::uint64_t dropped_by_nf_ = 0;
  std::uint64_t total_buffered_ = 0;
  std::uint64_t crossings_total_ = 0;
  std::uint64_t server_hops_total_ = 0;
  std::uint64_t cross_rack_hops_ = 0;

  // measurement window
  LatencyRecorder latency_;
  std::uint64_t measured_delivered_ = 0;
  std::uint64_t measured_injected_ = 0;
  std::uint64_t measured_delivered_bytes_ = 0;
  std::uint64_t measured_injected_bytes_ = 0;
  std::uint64_t measured_crossings_ = 0;

  // trailing-window ingress estimator
  mutable std::deque<std::pair<SimTime, std::uint64_t>> ingress_window_;

  // trace replay / capture
  std::size_t replay_pos_ = 0;
  SimTime replay_epoch_ = SimTime::zero();
  PacketTrace* capture_ = nullptr;
};

}  // namespace pam
