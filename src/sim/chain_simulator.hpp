// Discrete-event simulator of one service chain on one SmartNIC/CPU server.
//
// Mapping from the physical system to the model (DESIGN.md §2):
//
//   SmartNIC NPU complex  -> one FcfsServer; a packet visiting NF i on it
//                            occupies the server for
//                            load_factor x size x 8 / θ^S_i
//   CPU complex           -> one FcfsServer, same rule with θ^C_i; also
//                            serves per-crossing driver/DMA work
//   PCIe link             -> FcfsServer for serialisation + a pure delay of
//                            PcieLink::fixed_cost() per crossing
//   NF software overhead  -> pure delay (Calibration::nf_overhead) per hop;
//                            pipeline latency, not server occupancy
//
// With these rules a device saturates exactly when the paper's linear
// utilisation Σ θ_cur/θ^D_i reaches 1 — the DES realises the analytic model
// and adds what the closed form cannot: queueing, drop-tail loss, transient
// behaviour during migrations.
//
// Functional NFs (real classification/rewriting/counting on real header
// bytes) run at service completion, so behavioural tests and performance
// tests exercise one code path.
//
// Determinism: single-threaded, seeded, stable event ordering — identical
// inputs give bit-identical reports.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "chain/calibration.hpp"
#include "chain/service_chain.hpp"
#include "device/server.hpp"
#include "nf/network_function.hpp"
#include "packet/packet_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/fcfs_server.hpp"
#include "sim/sim_report.hpp"
#include "trafficgen/traffic_source_config.hpp"

namespace pam {

class ChainSimulator {
 public:
  /// `server` must outlive the simulator; its PcieLink counters are updated
  /// during the run.
  ChainSimulator(ServiceChain chain, Server& server, TrafficSourceConfig traffic,
                 Calibration calibration = Calibration::defaults());
  ~ChainSimulator();

  ChainSimulator(const ChainSimulator&) = delete;
  ChainSimulator& operator=(const ChainSimulator&) = delete;

  /// Runs for `duration` of simulated time; metrics cover [warmup, duration].
  /// In-flight packets are drained (unmetered) after the horizon so packet
  /// conservation is exact.  Call once per simulator instance.
  [[nodiscard]] SimReport run(SimTime duration, SimTime warmup = SimTime::milliseconds(20));

  // --- controller / migration-engine API -----------------------------------

  [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }
  [[nodiscard]] const ServiceChain& chain() const noexcept { return chain_; }
  [[nodiscard]] Server& server() noexcept { return *server_; }
  [[nodiscard]] const Calibration& calibration() const noexcept { return calibration_; }

  void schedule_at(SimTime at, std::function<void()> fn);
  void schedule_after(SimTime delay, std::function<void()> fn);
  /// Periodic callback every `period` starting at `start`; stops when the
  /// run's horizon is reached.
  void schedule_periodic(SimTime start, SimTime period, std::function<void()> fn);

  /// The functional NF instance at chain position i.
  [[nodiscard]] NetworkFunction& nf(std::size_t i) { return *nfs_.at(i); }
  /// Swap in a new instance (the migration engine's restore step).
  void replace_nf(std::size_t i, std::unique_ptr<NetworkFunction> fresh);

  /// Re-place node i (takes effect for packets not yet routed to it).
  void set_node_location(std::size_t i, Location loc);

  /// Pause: packets arriving at node i are buffered, not processed.
  void pause_node(std::size_t i);
  /// Resume: flushes the buffer through the node at its current location.
  void resume_node(std::size_t i);
  [[nodiscard]] bool paused(std::size_t i) const { return paused_.at(i); }
  [[nodiscard]] std::size_t buffered_at(std::size_t i) const {
    return buffers_.at(i).size();
  }

  /// Ingress rate observed over the trailing window (controller input).
  [[nodiscard]] Gbps observed_ingress_rate(SimTime window = SimTime::milliseconds(10)) const;

  /// Total packets buffered across all pause windows so far.
  [[nodiscard]] std::uint64_t total_buffered() const noexcept { return total_buffered_; }

  /// Capture every frame delivered at egress into `sink` (with the
  /// simulated delivery timestamp).  Pass nullptr to stop capturing.  The
  /// sink must outlive the run.
  void capture_egress(PacketTrace* sink) noexcept { capture_ = sink; }

 private:
  struct Parked {
    Packet* pkt;
    Location side;
  };

  void schedule_next_arrival();
  void schedule_replay_arrival();
  void inject(std::size_t size_bytes);
  void inject_frame(std::span<const std::uint8_t> frame);
  void account_injection(Packet* p);
  void advance(Packet* p, std::size_t idx, Location side);
  void process_node(Packet* p, std::size_t idx);
  void cross_pcie(Packet* p, std::function<void()> continuation);
  void deliver(Packet* p);
  void drop(Packet* p, std::uint64_t& counter);
  void finish(Packet* p);
  [[nodiscard]] bool metering() const noexcept {
    return queue_.now() >= warmup_ && queue_.now() <= horizon_;
  }

  ServiceChain chain_;
  Server* server_;
  Calibration calibration_;
  TrafficSourceConfig traffic_;

  EventQueue queue_;
  PacketPool pool_;
  FcfsServer nic_server_;
  FcfsServer cpu_server_;
  FcfsServer pcie_server_;

  std::vector<std::unique_ptr<NetworkFunction>> nfs_;
  std::vector<bool> paused_;
  std::vector<std::vector<Parked>> buffers_;

  /// Owners of the self-rescheduling closures from schedule_periodic();
  /// queued copies hold only weak_ptrs, so destroying the simulator
  /// reclaims them (no shared_ptr cycle).
  std::vector<std::shared_ptr<std::function<void()>>> periodic_tasks_;

  struct NodeStats {
    std::uint64_t packets = 0;
    LatencyRecorder residence;  ///< queue wait + service per visit
  };
  std::vector<NodeStats> node_stats_;

  FlowGenerator flowgen_;
  Rng rng_;

  SimTime warmup_ = SimTime::zero();
  SimTime horizon_ = SimTime::zero();
  bool stopped_ = false;
  bool ran_ = false;

  // accounting
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t dropped_queue_nic_ = 0;
  std::uint64_t dropped_queue_cpu_ = 0;
  std::uint64_t dropped_queue_pcie_ = 0;
  std::uint64_t dropped_by_nf_ = 0;
  std::uint64_t total_buffered_ = 0;
  std::uint64_t crossings_total_ = 0;

  // measurement window
  LatencyRecorder latency_;
  std::uint64_t measured_delivered_ = 0;
  std::uint64_t measured_injected_ = 0;
  std::uint64_t measured_delivered_bytes_ = 0;
  std::uint64_t measured_injected_bytes_ = 0;
  std::uint64_t measured_crossings_ = 0;

  // trailing-window ingress estimator
  mutable std::deque<std::pair<SimTime, std::uint64_t>> ingress_window_;

  // trace replay / capture
  std::size_t replay_pos_ = 0;
  SimTime replay_epoch_ = SimTime::zero();
  PacketTrace* capture_ = nullptr;
};

}  // namespace pam
