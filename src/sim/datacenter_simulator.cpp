#include "sim/datacenter_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/epoch_executor.hpp"

namespace pam {

namespace {
// Seed lineage base for lease-local pass_ratio streams: every lease derives
// its Rng from this constant and its (chain, node) identity, so which rack
// hosts the lease — and how many threads advance it — never shifts a
// random stream.
constexpr std::uint64_t kLeaseSeedBase = 0x9d47ac3a5e1ea5e5ull;
}  // namespace

DatacenterSimulator::DatacenterSimulator(const Options& options)
    : options_(options),
      per_rack_(options.servers_total / options.shards),
      fabric_(options.shards) {
  assert(options.shards >= 1);
  assert(options.servers_total % options.shards == 0 &&
         "servers_total must divide evenly into racks");
  assert(options.cross_rack_latency.ns() > 0 &&
         "the epoch quantum (cross-rack latency) must be positive");
  racks_.reserve(options.shards);
  for (std::size_t r = 0; r < options.shards; ++r) {
    racks_.push_back(std::make_unique<ClusterSimulator>(
        per_rack_, options.calibration, options.intra_rack_latency));
  }
}

std::size_t DatacenterSimulator::add_chain(ServiceChain chain,
                                          TrafficSourceConfig traffic,
                                          std::size_t home) {
  const std::size_t r = rack_of(home);
  const std::size_t slot = slot_of(home);
  const std::size_t local =
      racks_.at(r)->add_chain(std::move(chain), std::move(traffic), slot);
  const std::size_t global_c = chain_map_.size();
  chain_map_.push_back(ChainRef{r, local});
  chain_home_.push_back(home);
  racks_[r]->chain_sim(local).set_fabric_egress(
      [this, global_c, r](const Packet& p, std::size_t node) {
        send_visit(r, global_c, node, p);
      });
  return global_c;
}

void DatacenterSimulator::schedule_on_rack(std::size_t r, SimTime at,
                                           std::function<void()> fn) {
  racks_.at(r)->kernel().schedule_at(at, std::move(fn));
}

void DatacenterSimulator::schedule_fabric_latency(SimTime at, SimTime latency) {
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    ClusterSimulator* rack = racks_[r].get();
    rack->kernel().schedule_at(
        at, [rack, latency] { rack->set_fabric_latency(latency); });
  }
}

DatacenterSimulator::Lease* DatacenterSimulator::find_lease(std::size_t c,
                                                            std::size_t node) {
  for (const auto& lease : leases_) {
    if (lease->chain == c && lease->node == node) {
      return lease.get();
    }
  }
  return nullptr;
}

std::size_t DatacenterSimulator::lease_host(std::size_t c, std::size_t node) const {
  for (const auto& lease : leases_) {
    if (lease->chain == c && lease->node == node) {
      return global_server(lease->host_rack, lease->host_slot);
    }
  }
  assert(false && "lease_host queried for a node that is not leased");
  return 0;
}

bool DatacenterSimulator::commit_lease(std::size_t c, std::size_t node,
                                       std::size_t target) {
  const std::size_t host_rack = rack_of(target);
  const std::size_t host_slot = slot_of(target);
  assert(host_rack != home_rack_of(c) &&
         "a lease crosses racks; use move_node for intra-rack placement");
  if (!racks_[host_rack]->server_alive(host_slot)) {
    return false;
  }
  ChainSimulator& sim = chain_sim(c);
  assert(!sim.node_remote(node));
  auto lease = std::make_unique<Lease>();
  lease->chain = c;
  lease->node = node;
  lease->host_rack = host_rack;
  lease->host_slot = host_slot;
  lease->spec = sim.chain().node(node).spec;
  lease->nf = sim.take_nf(node);
  lease->rng = Rng{Rng::derive(kLeaseSeedBase, (c << 16) | node)};
  assert(lease->nf != nullptr);
  leases_.push_back(std::move(lease));
  sim.set_node_remote(node, true);
  return true;
}

void DatacenterSimulator::send_visit(std::size_t src_rack, std::size_t c,
                                     std::size_t node, const Packet& p) {
  Lease* lease = find_lease(c, node);
  assert(lease != nullptr && "remote node without a lease");
  FabricFrame frame = fabric_.acquire(src_rack);
  frame.kind = FabricFrame::Kind::kVisit;
  frame.outcome = FabricFrame::Outcome::kPassed;
  frame.chain = c;
  frame.node = node;
  frame.sent_at = racks_[src_rack]->kernel().now();
  frame.bytes.assign(p.data().begin(), p.data().end());
  frame.packet_id = p.id();
  frame.ingress_time = p.ingress_time();
  frame.pcie_crossings = p.pcie_crossings();
  frame.hops = p.hops();
  fabric_.send(src_rack, lease->host_rack, std::move(frame));
}

void DatacenterSimulator::deliver_frame(std::size_t dst, FabricFrame&& frame) {
  // Lookahead: sent_at lies inside the epoch that just ended, so the
  // arrival is always at or after the barrier the destination sits at.
  const SimTime at = frame.sent_at + options_.cross_rack_latency;
  const bool visit = frame.kind == FabricFrame::Kind::kVisit;
  SimulationKernel& kernel = racks_[dst]->kernel();
  if (visit) {
    kernel.schedule_at(at, [this, dst, f = std::move(frame)]() mutable {
      host_visit(dst, std::move(f));
    });
  } else {
    kernel.schedule_at(at, [this, dst, f = std::move(frame)]() mutable {
      home_return(dst, std::move(f));
    });
  }
}

void DatacenterSimulator::send_return(std::size_t host, std::size_t c,
                                      std::size_t node,
                                      FabricFrame::Outcome outcome,
                                      const Packet& p) {
  FabricFrame frame = fabric_.acquire(host);
  frame.kind = FabricFrame::Kind::kReturn;
  frame.outcome = outcome;
  frame.chain = c;
  frame.node = node;
  frame.sent_at = racks_[host]->kernel().now();
  frame.packet_id = p.id();
  frame.ingress_time = p.ingress_time();
  frame.pcie_crossings = p.pcie_crossings();
  frame.hops = p.hops();
  frame.bytes.clear();
  if (outcome == FabricFrame::Outcome::kPassed) {
    frame.bytes.assign(p.data().begin(), p.data().end());
  }
  fabric_.send(host, home_rack_of(c), std::move(frame));
}

void DatacenterSimulator::host_visit(std::size_t host, FabricFrame frame) {
  // Runs on the host shard's thread, mid-epoch.  Everything it touches —
  // the host rack's pool/devices/kernel, the lease, the host's own mailbox
  // row — is owned by this shard for the epoch.
  Lease* lease = find_lease(frame.chain, frame.node);
  assert(lease != nullptr && lease->host_rack == host);
  ClusterSimulator& rack = *racks_[host];
  SimulationKernel& kernel = rack.kernel();

  auto handle = kernel.pool().acquire(frame.bytes.size());
  if (!handle) {
    // Host pool exhausted: the visit is refused at the host NIC.
    frame.kind = FabricFrame::Kind::kReturn;
    frame.outcome = FabricFrame::Outcome::kDroppedNic;
    frame.sent_at = kernel.now();
    frame.bytes.clear();
    fabric_.send(host, home_rack_of(frame.chain), std::move(frame));
    return;
  }
  Packet* p = handle.release();
  std::copy(frame.bytes.begin(), frame.bytes.end(), p->data().begin());
  p->set_id(frame.packet_id);
  p->set_ingress_time(frame.ingress_time);
  p->restore_path_counters(frame.pcie_crossings, frame.hops);
  const std::size_t c = frame.chain;
  const std::size_t node = frame.node;
  fabric_.release(host, std::move(frame));  // inbound storage recycled

  // Leased NFs always execute on the host SmartNIC: same occupancy rule as
  // ChainSimulator::process_node, against the host slot's shared NIC.
  FcfsServer& nic = rack.devices(lease->host_slot).nic;
  const SimTime service =
      serialization_delay(p->wire_bytes(),
                          lease->spec.capacity.on(Location::kSmartNic)) *
      lease->spec.load_factor;
  const SimTime submitted_at = kernel.now();
  const bool accepted = nic.submit(service, [this, host, c, node, p,
                                             submitted_at] {
    Lease* lease = find_lease(c, node);
    SimulationKernel& kernel = racks_[host]->kernel();
    if (kernel.metering()) {
      ++lease->packets;
      lease->residence.record(kernel.now() - submitted_at);
    }
    p->note_hop();
    const Verdict verdict = lease->nf->handle(*p, kernel.now());
    bool nf_drop = verdict == Verdict::kDrop;
    if (!nf_drop && lease->spec.pass_ratio < 1.0 &&
        lease->rng.chance(1.0 - lease->spec.pass_ratio)) {
      nf_drop = true;
    }
    if (nf_drop) {
      send_return(host, c, node, FabricFrame::Outcome::kDroppedNf, *p);
      kernel.pool().release(p);
      return;
    }
    // NF software overhead, then back over the fabric (parity with the
    // nf_overhead pipeline delay a local visit pays).
    kernel.schedule_after(
        racks_[host]->calibration().nf_overhead(Location::kSmartNic),
        [this, host, c, node, p] {
          send_return(host, c, node, FabricFrame::Outcome::kPassed, *p);
          racks_[host]->kernel().pool().release(p);
        });
  });
  if (!accepted) {
    send_return(host, c, node, FabricFrame::Outcome::kDroppedNic, *p);
    kernel.pool().release(p);
  }
}

void DatacenterSimulator::home_return(std::size_t home, FabricFrame frame) {
  const ChainRef& ref = chain_map_.at(frame.chain);
  assert(ref.rack == home);
  ChainSimulator& sim = racks_[home]->chain_sim(ref.local);
  ChainSimulator::RemoteReturn ret;
  ret.passed = frame.outcome == FabricFrame::Outcome::kPassed;
  ret.drop = frame.outcome == FabricFrame::Outcome::kDroppedNic ? 1 : 2;
  ret.bytes = frame.bytes;
  ret.packet_id = frame.packet_id;
  ret.ingress_time = frame.ingress_time;
  ret.pcie_crossings = frame.pcie_crossings;
  ret.hops = frame.hops;
  sim.resume_from_remote(frame.node, ret);
  fabric_.release(home, std::move(frame));
}

void DatacenterSimulator::exchange() {
  fabric_.exchange([this](std::size_t src, std::size_t dst, FabricFrame&& frame) {
    (void)src;  // mailbox order already encodes (dst, src, seq)
    deliver_frame(dst, std::move(frame));
  });
}

DatacenterReport DatacenterSimulator::run(SimTime duration, SimTime warmup,
                                          std::size_t threads) {
  assert(!ran_ && "DatacenterSimulator::run is single-shot");
  ran_ = true;
  for (auto& rack : racks_) {
    rack->kernel().arm(duration, warmup);
    rack->begin();
  }

  EpochExecutor executor(std::max<std::size_t>(threads, 1), racks_.size());
  const auto advance_all = [&](SimTime until) {
    executor.run_epoch(
        [&](std::size_t s) { racks_[s]->kernel().advance_until(until); });
    ++epochs_;
  };

  const SimTime q = options_.cross_rack_latency;
  SimTime t = SimTime::zero();

  // Main phase: fixed-quantum epochs to the horizon.
  while (t < duration) {
    t = std::min(duration, t + q);
    advance_all(t);
    exchange();
    if (barrier_hook_) {
      barrier_hook_(t, /*draining=*/false);
    }
  }

  // Drain phase: sources stop, queued work completes unmetered.  Epochs
  // keep cycling — fast-forwarding over dead time to the earliest pending
  // event — until every queue and mailbox is dry and no barrier-time
  // action (e.g. a pending cross-rack commit) is outstanding.
  for (auto& rack : racks_) {
    rack->kernel().begin_drain();
  }
  for (;;) {
    bool queues_pending = false;
    SimTime earliest = t;
    bool have_earliest = false;
    for (const auto& rack : racks_) {
      const EventQueue& queue = rack->kernel().queue();
      if (queue.empty()) {
        continue;
      }
      queues_pending = true;
      if (!have_earliest || queue.next_at() < earliest) {
        earliest = queue.next_at();
        have_earliest = true;
      }
    }
    if (!queues_pending && !(drain_gate_ && drain_gate_())) {
      break;
    }
    t = std::max(t + q, earliest);
    advance_all(t);
    exchange();
    if (barrier_hook_) {
      barrier_hook_(t, /*draining=*/true);
    }
  }

  return assemble(duration);
}

DatacenterReport DatacenterSimulator::assemble(SimTime duration) {
  DatacenterReport out;
  out.epochs = epochs_;
  out.cross_rack_frames = fabric_.frames_exchanged();

  std::vector<ClusterReport> rack_reports;
  rack_reports.reserve(racks_.size());
  for (auto& rack : racks_) {
    rack_reports.push_back(rack->collect(duration));
  }

  ClusterReport& fleet = out.cluster;
  fleet.servers = num_servers();
  fleet.duration = duration;
  fleet.per_server.resize(num_servers());
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    for (std::size_t s = 0; s < per_rack_; ++s) {
      ServerSummary& sum = fleet.per_server[global_server(r, s)];
      sum = rack_reports[r].per_server[s];
      sum.server_id = global_server(r, s);
    }
    fleet.cross_rack_hops += rack_reports[r].cross_rack_hops;
  }

  // Per-chain reports in global id order; fleet totals and the merged
  // latency distribution accumulate in that same order, so the merge is
  // independent of rack partitioning details like thread assignment.
  double goodput = 0.0;
  double offered = 0.0;
  fleet.per_chain.reserve(chain_map_.size());
  for (std::size_t c = 0; c < chain_map_.size(); ++c) {
    const ChainRef& ref = chain_map_[c];
    SimReport report = std::move(rack_reports[ref.rack].per_chain[ref.local]);
    fleet.injected += report.injected;
    fleet.delivered += report.delivered;
    fleet.dropped_total += report.dropped_total();
    fleet.in_flight_at_end += report.in_flight_at_end;
    fleet.pcie_crossings += report.pcie_crossings;
    fleet.inter_server_hops += report.inter_server_hops;
    fleet.latency.merge(report.latency);
    goodput += report.egress_goodput.value();
    offered += report.offered_rate.value();
    fleet.per_chain.push_back(std::move(report));
  }
  fleet.egress_goodput = Gbps{goodput};
  fleet.offered_rate = Gbps{offered};

  // Leased nodes: their visit stats live host-side; patch them into the
  // home chain's per-node view and credit the host slot with the node.
  for (const auto& lease : leases_) {
    SimReport& report = fleet.per_chain[lease->chain];
    NodeSummary& node = report.per_node.at(lease->node);
    node.location = Location::kSmartNic;
    node.packets = lease->packets;
    if (lease->packets > 0) {
      node.mean_residence = lease->residence.mean();
      node.p99_residence = lease->residence.quantile(0.99);
    }
    ++fleet.per_server[global_server(lease->host_rack, lease->host_slot)]
          .nodes_hosted;
  }

  out.shards.reserve(racks_.size());
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    ShardSummary ss;
    ss.shard = r;
    ss.first_server = global_server(r, 0);
    ss.servers = per_rack_;
    ss.events_executed = racks_[r]->kernel().queue().executed();
    ss.injected = rack_reports[r].injected;
    ss.delivered = rack_reports[r].delivered;
    ss.dropped = rack_reports[r].dropped_total;
    ss.in_flight_at_end = rack_reports[r].in_flight_at_end;
    ss.frames_out = fabric_.frames_from(r);
    out.shards.push_back(ss);
  }
  return out;
}

}  // namespace pam
