// The sharded kernel's only threading primitive: a barrier-synchronized
// worker pool that advances every shard through one epoch and parks.
//
// This file (and its .cpp) is the single place in the codebase where raw
// std::thread / std::mutex / std::condition_variable may appear — pam_lint
// rule D006 flags them anywhere else.  Funnelling all parallelism through
// this executor is what keeps the simulation deterministic: shards share
// nothing mid-epoch (each shard's state is touched only by the worker that
// owns it for the epoch), and every cross-shard interaction happens on the
// caller's thread between run_epoch calls, under the happens-before edges
// the barrier establishes.
//
// Work assignment is static round-robin — worker w runs shards w, w+T,
// w+2T, ... — so which thread advances a shard is fixed, but it also does
// not matter: determinism comes from shard isolation, not scheduling.
//
// threads == 1 runs every shard inline on the caller's thread; no worker
// threads are ever created, and the run is trivially identical to the
// multi-threaded one.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pam {

class EpochExecutor {
 public:
  /// Spawns min(threads, shards) - 1 persistent workers (the caller's
  /// thread acts as worker 0); 1 thread means fully inline execution.
  EpochExecutor(std::size_t threads, std::size_t shards);
  ~EpochExecutor();

  EpochExecutor(const EpochExecutor&) = delete;
  EpochExecutor& operator=(const EpochExecutor&) = delete;

  [[nodiscard]] std::size_t threads() const noexcept { return workers_.size() + 1; }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// Runs `shard_work(s)` once for every shard s in [0, shards) and returns
  /// when all calls finished.  The callback must touch only shard-owned
  /// state (plus its own mailbox row of the fabric).  Blocking barrier:
  /// on return, everything the workers wrote is visible to the caller, and
  /// everything the caller wrote before the call was visible to them.
  void run_epoch(const std::function<void(std::size_t)>& shard_work);

 private:
  void worker_loop(std::size_t worker_index);
  void run_slice(std::size_t worker_index,
                 const std::function<void(std::size_t)>& shard_work);

  std::size_t shards_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;  ///< caller -> workers: epoch posted
  std::condition_variable done_cv_;   ///< workers -> caller: slice finished
  const std::function<void(std::size_t)>* work_ = nullptr;  // guarded by mu_
  std::uint64_t epoch_ = 0;        ///< generation counter (guarded by mu_)
  std::size_t outstanding_ = 0;    ///< workers still in the epoch (guarded by mu_)
  bool shutdown_ = false;          ///< guarded by mu_
};

}  // namespace pam
