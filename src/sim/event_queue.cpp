#include "sim/event_queue.hpp"

#include <utility>

namespace pam {

void EventQueue::schedule_at(SimTime at, Action action) {
  if (at < now_) {
    at = now_;  // clamp: scheduling in the past means "immediately"
  }
  heap_.push(Event{at, next_seq_++, std::move(action)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top() is const&; move out via const_cast is UB-free here
  // because we pop immediately after and never touch the moved-from state.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.at;
  ++executed_;
  ev.action();
  return true;
}

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty() && heap_.top().at <= until) {
    run_one();
  }
  if (now_ < until) {
    now_ = until;
  }
}

}  // namespace pam
