// Fleet-scale simulation: N SmartNIC/CPU servers x M service chains on one
// shared SimulationKernel.
//
// The paper's deployment story is a rack of SmartNIC-accelerated servers
// whose operators "periodically query the load of SmartNIC and CPU" and
// rebalance.  ClusterSimulator models that rack: every chain is an embedded
// ChainSimulator advancing on the shared event queue and drawing from the
// shared packet pool; chains homed on the same rack slot contend for that
// slot's ServerDevices (NPU, CPU, PCIe), and individual chain nodes can be
// re-bound to other slots at runtime — the actual mechanism behind
// cross-server scale-out (see control/fleet_controller.hpp for the policy
// side).
//
// A run produces a ClusterReport: the per-chain SimReports, per-server
// device utilisation/accounting, and a fleet aggregation (Memento-style
// cheap fleet-wide metrics: merged latency distribution, summed packet
// accounting, total goodput) — one structure instead of report stitching.
//
// Determinism: one kernel, one thread, seeded chains — identical inputs
// give bit-identical reports.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/calibration.hpp"
#include "device/server.hpp"
#include "sim/chain_simulator.hpp"
#include "sim/sim_report.hpp"
#include "sim/simulation_kernel.hpp"

namespace pam {

/// Device-level view of one rack slot over the whole run.
struct ServerSummary {
  std::size_t server_id = 0;
  std::size_t chains_homed = 0;    ///< chains whose ingress/egress live here
  std::size_t nodes_hosted = 0;    ///< chain nodes bound here at run end
  double smartnic_utilization = 0.0;
  double cpu_utilization = 0.0;
  double pcie_utilization = 0.0;
  /// Packet accounting summed over the chains homed on this slot.
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

/// Fleet aggregation of one cluster run: per-chain reports, per-server
/// summaries, and merged totals.
struct ClusterReport {
  std::size_t servers = 0;
  SimTime duration = SimTime::zero();

  std::vector<SimReport> per_chain;       ///< in add_chain order
  std::vector<ServerSummary> per_server;  ///< indexed by server id

  // --- fleet totals (whole run) --------------------------------------------
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_total = 0;
  std::uint64_t in_flight_at_end = 0;
  std::uint64_t pcie_crossings = 0;
  std::uint64_t inter_server_hops = 0;
  /// Packets serialized over the cross-rack fabric (datacenter mode; 0 for
  /// a single-rack run).
  std::uint64_t cross_rack_hops = 0;

  // --- fleet measurement window --------------------------------------------
  LatencyRecorder latency;  ///< merged across all chains
  Gbps egress_goodput;      ///< summed over chains
  Gbps offered_rate;        ///< summed over chains

  /// Conservation across the whole fleet.
  [[nodiscard]] bool conserved() const noexcept {
    return injected == delivered + dropped_total + in_flight_at_end;
  }

  [[nodiscard]] std::string summary() const;
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(std::size_t num_servers,
                            Calibration calibration = Calibration::defaults(),
                            SimTime inter_server_latency = SimTime::microseconds(50.0));

  ClusterSimulator(const ClusterSimulator&) = delete;
  ClusterSimulator& operator=(const ClusterSimulator&) = delete;

  /// Adds a chain homed on rack slot `home_server`.  Returns the chain
  /// index.  Call before run().
  std::size_t add_chain(ServiceChain chain, TrafficSourceConfig traffic,
                        std::size_t home_server);

  [[nodiscard]] std::size_t num_servers() const noexcept { return servers_.size(); }
  [[nodiscard]] std::size_t num_chains() const noexcept { return chains_.size(); }

  [[nodiscard]] SimulationKernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] ChainSimulator& chain_sim(std::size_t i) { return *chains_.at(i); }
  [[nodiscard]] const ChainSimulator& chain_sim(std::size_t i) const {
    return *chains_.at(i);
  }
  [[nodiscard]] Server& server(std::size_t s) { return *servers_.at(s); }
  [[nodiscard]] ServerDevices& devices(std::size_t s) { return *devices_.at(s); }
  [[nodiscard]] const Calibration& calibration() const noexcept { return calibration_; }

  /// Re-binds node `node` of chain `c` to rack slot `target` at `loc`
  /// (cross-server scale-out; effective for packets not yet routed there).
  void move_node(std::size_t c, std::size_t node, std::size_t target, Location loc);

  /// Cumulative busy fraction of slot `s`'s NIC / CPU over [0, now] — the
  /// fleet controller's least-loaded and fit signals.
  [[nodiscard]] double server_nic_load(std::size_t s) const;
  [[nodiscard]] double server_cpu_load(std::size_t s) const;
  /// The hottest of the two.
  [[nodiscard]] double server_load(std::size_t s) const;

  // --- failure scenarios -----------------------------------------------------

  /// Marks slot `s` dead / alive again.  The simulator keeps executing work
  /// already bound there (the ToR and the slot's queues survive long enough
  /// to drain); liveness is a placement signal the FleetController consults
  /// when choosing evacuation / scale-out targets.
  void fail_server(std::size_t s);
  void recover_server(std::size_t s);
  [[nodiscard]] bool server_alive(std::size_t s) const { return alive_.at(s); }
  [[nodiscard]] std::size_t servers_alive() const;

  // --- hostile-link scenarios ------------------------------------------------

  /// Re-shapes the rack fabric: every chain's inter-slot forwarding latency
  /// becomes `latency` from now on (trace-driven delay schedules).
  void set_fabric_latency(SimTime latency);
  /// Capacity fade: slot `s`'s NIC and CPU service rates are multiplied by
  /// `speed` (1.0 = nominal) for subsequently submitted jobs.
  void set_slot_speed(std::size_t s, double speed);

  /// Runs every chain to the horizon, drains, and aggregates.  Single-shot.
  [[nodiscard]] ClusterReport run(SimTime duration,
                                  SimTime warmup = SimTime::milliseconds(10));

  // --- epoch-stepped driving (sharded datacenter mode) ----------------------

  /// Schedules every chain's first arrival without running the kernel; the
  /// DatacenterSimulator then advances this rack's kernel epoch by epoch.
  /// run() == begin() + kernel().run() + collect().
  void begin();

  /// Aggregates the rack's ClusterReport from the current counters; valid
  /// once the kernel has fully drained.
  [[nodiscard]] ClusterReport collect(SimTime duration);

 private:
  Calibration calibration_;
  SimulationKernel kernel_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<ServerDevices>> devices_;
  std::vector<std::unique_ptr<ChainSimulator>> chains_;
  std::vector<std::size_t> home_of_;  ///< chain index -> home server id
  std::vector<bool> alive_;           ///< per-slot liveness (failure kinds)
  SimTime inter_server_latency_;
};

}  // namespace pam
