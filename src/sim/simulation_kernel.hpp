// The reusable discrete-event engine shared by every simulator frontend.
//
// SimulationKernel bundles what used to live inside ChainSimulator and is
// not specific to "one chain on one server": the deterministic EventQueue,
// the mempool-style PacketPool, the measurement-window bookkeeping
// (warmup/horizon), the end-of-run drain that makes packet conservation
// exact, and the single horizon-bounded `schedule_periodic` implementation
// used by the per-server controller loop and the fleet controller alike.
//
// Frontends:
//   - ChainSimulator      owns a private kernel (standalone mode) or embeds
//                         into a shared one (cluster mode);
//   - ClusterSimulator    one kernel, N servers x M chains advancing on the
//                         same queue and drawing from the same pool.
//
// Determinism: the kernel adds no randomness of its own; with seeded
// frontends, identical inputs give bit-identical runs.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "packet/packet_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/fcfs_server.hpp"

namespace pam {

struct Calibration;

class SimulationKernel {
 public:
  explicit SimulationKernel(std::size_t pool_capacity = 4096);

  SimulationKernel(const SimulationKernel&) = delete;
  SimulationKernel& operator=(const SimulationKernel&) = delete;

  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }
  [[nodiscard]] PacketPool& pool() noexcept { return pool_; }
  [[nodiscard]] const PacketPool& pool() const noexcept { return pool_; }

  [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }
  [[nodiscard]] SimTime warmup() const noexcept { return warmup_; }
  [[nodiscard]] SimTime horizon() const noexcept { return horizon_; }

  /// True inside the measurement window [warmup, horizon].
  [[nodiscard]] bool metering() const noexcept {
    return queue_.now() >= warmup_ && queue_.now() <= horizon_;
  }
  /// True once the horizon has been reached and the drain phase started;
  /// traffic sources use this to stop injecting.
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  void schedule_at(SimTime at, std::function<void()> fn) {
    queue_.schedule_at(at, std::move(fn));
  }
  void schedule_after(SimTime delay, std::function<void()> fn) {
    queue_.schedule_after(delay, std::move(fn));
  }

  /// Periodic callback every `period` starting at `start`; stops when the
  /// run's horizon is reached.  The kernel owns the self-rescheduling
  /// closure (queued copies hold only weak_ptrs), so destroying the kernel
  /// reclaims stateful callbacks without a shared_ptr cycle.
  void schedule_periodic(SimTime start, SimTime period, std::function<void()> fn);

  /// Single-shot: arms the measurement window, runs events until the clock
  /// reaches `duration`, then drains the queue unmetered so in-flight work
  /// completes and packet conservation is exact.
  void run(SimTime duration, SimTime warmup);

  // --- epoch-stepped execution (sharded datacenter mode) --------------------
  //
  // `run()` decomposes into three primitives so a DatacenterSimulator can
  // advance many kernels in lock-step epochs: `arm` opens the measurement
  // window without executing anything, `advance_until` runs events up to an
  // epoch barrier (the clock lands exactly on the barrier), and
  // `begin_drain` flips `stopped()` so traffic sources quit while queued
  // work keeps completing in later (unmetered) epochs.  `run(d, w)` is
  // exactly arm + advance_until(d) + begin_drain + run the queue dry.

  /// Arms the measurement window for epoch-stepped execution.  Single-shot,
  /// like run().
  void arm(SimTime duration, SimTime warmup);

  /// Runs events until the clock reaches epoch barrier `t`.
  void advance_until(SimTime t) { queue_.run_until(t); }

  /// Starts the drain phase: sources observe stopped() and quit; remaining
  /// events run unmetered via further advance_until calls.
  void begin_drain() noexcept { stopped_ = true; }

 private:
  EventQueue queue_;
  PacketPool pool_;
  std::vector<std::shared_ptr<std::function<void()>>> periodic_tasks_;
  SimTime warmup_ = SimTime::zero();
  SimTime horizon_ = SimTime::zero();
  bool stopped_ = false;
  bool ran_ = false;
};

/// The three FCFS queueing contexts of one physical server — NPU complex,
/// CPU complex, PCIe link — bound to a kernel's event queue.  In standalone
/// mode each ChainSimulator owns one; in cluster mode every chain homed on
/// (or offloaded to) the same rack slot shares the slot's instance, so
/// co-located chains contend for the same hardware.
struct ServerDevices {
  ServerDevices(EventQueue& queue, const Calibration& calibration,
                const std::string& tag = "");

  FcfsServer nic;
  FcfsServer cpu;
  FcfsServer pcie;
};

}  // namespace pam
