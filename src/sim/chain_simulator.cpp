#include "sim/chain_simulator.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"
#include "nf/nf_factory.hpp"
#include "packet/packet_builder.hpp"

namespace pam {

ChainSimulator::ChainSimulator(ServiceChain chain, Server& server,
                               TrafficSourceConfig traffic, Calibration calibration)
    : chain_(std::move(chain)),
      server_(&server),
      calibration_(calibration),
      traffic_(std::move(traffic)),
      owned_kernel_(std::make_unique<SimulationKernel>(4096)),
      kernel_(owned_kernel_.get()),
      owned_devices_(std::make_unique<ServerDevices>(kernel_->queue(), calibration)),
      home_{0, owned_devices_.get(), &server},
      flowgen_(traffic_.flows, traffic_.seed),
      rng_(traffic_.seed ^ 0xabcdef0123456789ull) {
  chain_.validate();
  nfs_.reserve(chain_.size());
  for (const auto& node : chain_.nodes()) {
    nfs_.push_back(make_network_function(node.spec.type, node.spec.name,
                                         node.spec.load_factor));
  }
  bindings_.assign(chain_.size(), home_);
  paused_.assign(chain_.size(), false);
  remote_.assign(chain_.size(), false);
  buffers_.resize(chain_.size());
  node_stats_.resize(chain_.size());
}

ChainSimulator::ChainSimulator(SimulationKernel& kernel, ServerDevices& devices,
                               std::size_t home_server_id, ServiceChain chain,
                               Server& server, TrafficSourceConfig traffic,
                               Calibration calibration)
    : chain_(std::move(chain)),
      server_(&server),
      calibration_(calibration),
      traffic_(std::move(traffic)),
      kernel_(&kernel),
      home_{home_server_id, &devices, &server},
      flowgen_(traffic_.flows, traffic_.seed),
      rng_(traffic_.seed ^ 0xabcdef0123456789ull) {
  chain_.validate();
  nfs_.reserve(chain_.size());
  for (const auto& node : chain_.nodes()) {
    nfs_.push_back(make_network_function(node.spec.type, node.spec.name,
                                         node.spec.load_factor));
  }
  bindings_.assign(chain_.size(), home_);
  paused_.assign(chain_.size(), false);
  remote_.assign(chain_.size(), false);
  buffers_.resize(chain_.size());
  node_stats_.resize(chain_.size());
}

ChainSimulator::~ChainSimulator() {
  // Release anything still parked so the pool's leak check stays meaningful.
  for (auto& buffer : buffers_) {
    for (auto& parked : buffer) {
      pool().release(parked.pkt);
    }
    buffer.clear();
  }
}

void ChainSimulator::schedule_at(SimTime at, std::function<void()> fn) {
  kernel_->schedule_at(at, std::move(fn));
}

void ChainSimulator::schedule_after(SimTime delay, std::function<void()> fn) {
  kernel_->schedule_after(delay, std::move(fn));
}

void ChainSimulator::schedule_periodic(SimTime start, SimTime period,
                                       std::function<void()> fn) {
  kernel_->schedule_periodic(start, period, std::move(fn));
}

void ChainSimulator::replace_nf(std::size_t i, std::unique_ptr<NetworkFunction> fresh) {
  assert(fresh != nullptr);
  nfs_.at(i) = std::move(fresh);
}

void ChainSimulator::set_node_location(std::size_t i, Location loc) {
  chain_.set_location(i, loc);
}

void ChainSimulator::set_node_server(std::size_t i, std::size_t server_id,
                                     ServerDevices& devices, Server& hw) {
  bindings_.at(i) = NodeBinding{server_id, &devices, &hw};
}

std::size_t ChainSimulator::nodes_off_home() const noexcept {
  std::size_t n = 0;
  for (const auto& b : bindings_) {
    if (b.server != home_.server) {
      ++n;
    }
  }
  return n;
}

std::size_t ChainSimulator::nodes_remote() const noexcept {
  std::size_t n = 0;
  for (const bool r : remote_) {
    if (r) {
      ++n;
    }
  }
  return n;
}

void ChainSimulator::pause_node(std::size_t i) { paused_.at(i) = true; }

void ChainSimulator::resume_node(std::size_t i) {
  paused_.at(i) = false;
  auto parked = std::move(buffers_.at(i));
  buffers_.at(i).clear();
  for (auto& entry : parked) {
    advance(entry.pkt, i, entry.at);
  }
}

Gbps ChainSimulator::observed_ingress_rate(SimTime window) const {
  const SimTime cutoff = kernel_->now() - window;
  while (!ingress_window_.empty() && ingress_window_.front().first < cutoff) {
    ingress_window_.pop_front();
  }
  std::uint64_t bytes = 0;
  for (const auto& [t, b] : ingress_window_) {
    bytes += b;
  }
  return rate_of(Bytes{bytes}, window);
}

void ChainSimulator::schedule_next_arrival() {
  if (kernel_->stopped()) {
    return;
  }
  if (active_stop_.ns() >= 0 && kernel_->now() >= active_stop_) {
    return;  // tenant departed: the source dies, in-flight packets drain
  }
  if (traffic_.replay && !traffic_.replay->empty()) {
    schedule_replay_arrival();
    return;
  }
  const Gbps rate = traffic_.rate.at(kernel_->now());
  const std::size_t next_size = traffic_.sizes.sample(rng_);
  if (rate.value() <= 1e-9) {
    // Source idle; poll the profile again shortly.
    kernel_->schedule_after(SimTime::milliseconds(1.0),
                            [this] { schedule_next_arrival(); });
    return;
  }
  const SimTime gap_mean = serialization_delay(Bytes{next_size}, rate);
  const SimTime gap =
      traffic_.process == ArrivalProcess::kPoisson
          ? SimTime::nanoseconds(static_cast<std::int64_t>(
                rng_.exponential(static_cast<double>(gap_mean.ns()))))
          : gap_mean;
  kernel_->schedule_after(gap, [this, next_size] {
    if (kernel_->stopped() || kernel_->now() >= kernel_->horizon()) {
      return;
    }
    if (active_stop_.ns() >= 0 && kernel_->now() >= active_stop_) {
      return;
    }
    inject(next_size);
    schedule_next_arrival();
  });
}

void ChainSimulator::schedule_replay_arrival() {
  const auto& records = traffic_.replay->records();
  if (replay_pos_ >= records.size()) {
    if (!traffic_.replay_loop) {
      return;  // capture exhausted
    }
    // Repeat back-to-back: next epoch starts one mean inter-frame gap
    // after the previous capture's last frame.
    const SimTime span = traffic_.replay->duration();
    const SimTime gap = SimTime::nanoseconds(
        span.ns() / static_cast<std::int64_t>(records.size()) + 1);
    replay_epoch_ += span + gap;
    replay_pos_ = 0;
  }
  const SimTime first_ts = records.front().timestamp;
  const TraceRecord& rec = records[replay_pos_];
  const SimTime at = replay_epoch_ + (rec.timestamp - first_ts);
  ++replay_pos_;
  kernel_->schedule_at(at, [this, &rec] {
    if (kernel_->stopped() || kernel_->now() >= kernel_->horizon()) {
      return;
    }
    inject_frame(rec.frame);
    schedule_next_arrival();
  });
}

void ChainSimulator::account_injection(Packet* p) {
  p->set_id(++injected_);
  p->set_ingress_time(kernel_->now());
  ++in_flight_;
  ingress_window_.emplace_back(kernel_->now(),
                               static_cast<std::uint64_t>(p->size()));
  if (ingress_window_.size() > 65536) {
    ingress_window_.pop_front();
  }
  if (metering()) {
    ++measured_injected_;
    measured_injected_bytes_ += p->size();
  }
  advance(p, 0, Hop{home_.server, side_of(chain_.ingress())});
}

void ChainSimulator::inject(std::size_t size_bytes) {
  auto handle = pool().acquire(size_bytes);
  if (!handle) {
    // Mempool exhausted — the sender itself is backpressured; account as a
    // NIC-side loss.
    ++dropped_queue_nic_;
    ++injected_;
    return;
  }
  Packet* p = handle.release();
  PacketBuilder builder;
  builder.size(size_bytes)
      .flow(flowgen_.next(rng_))
      .payload_seed(rng_.next_u64());
  builder.build_into(*p);
  account_injection(p);
}

void ChainSimulator::inject_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < Packet::kMinSize) {
    ++dropped_queue_nic_;  // runt frame: the NIC MAC would discard it
    ++injected_;
    return;
  }
  auto handle = pool().acquire(frame.size());
  if (!handle) {
    ++dropped_queue_nic_;
    ++injected_;
    return;
  }
  Packet* p = handle.release();
  std::copy(frame.begin(), frame.end(), p->data().begin());
  account_injection(p);
}

void ChainSimulator::advance(Packet* p, std::size_t idx, Hop from) {
  if (idx >= chain_.size()) {
    // Egress is always served from the home slot.
    if (from.server != home_.server) {
      forward_to_server(p, home_.server,
                        [this, p, idx](Hop at) { advance(p, idx, at); });
      return;
    }
    const Location egress_side = side_of(chain_.egress());
    if (from.side != egress_side) {
      cross_pcie(p, home_, [this, p] { deliver(p); });
    } else {
      deliver(p);
    }
    return;
  }
  if (paused_[idx]) {
    buffers_[idx].push_back(Parked{p, from});
    ++total_buffered_;
    return;
  }
  if (remote_[idx]) {
    // The node is leased to another rack: the packet leaves this shard as
    // a serialized FabricFrame and comes back through resume_from_remote.
    send_to_fabric(p, idx);
    return;
  }
  const NodeBinding& binding = bindings_[idx];
  if (from.server != binding.server) {
    // Next NF lives on another rack slot: forward over the inter-server
    // fabric; the packet re-enters at that slot's SmartNIC side.
    forward_to_server(p, binding.server,
                      [this, p, idx](Hop at) { advance(p, idx, at); });
    return;
  }
  const Location loc = chain_.location_of(idx);
  if (loc != from.side) {
    cross_pcie(p, binding, [this, p, idx] { process_node(p, idx); });
  } else {
    process_node(p, idx);
  }
}

void ChainSimulator::send_to_fabric(Packet* p, std::size_t idx) {
  assert(fabric_egress_ && "remote node without a fabric send hook");
  ++cross_rack_hops_;
  fabric_egress_(*p, idx);
  // The packet stays logically in flight (in_flight_ unchanged) while its
  // serialized form crosses the fabric; only the buffer goes back to the
  // pool, to be recycled by home traffic in the meantime.
  pool().release(p);
}

void ChainSimulator::resume_from_remote(std::size_t i, const RemoteReturn& ret) {
  if (!ret.passed) {
    assert(in_flight_ > 0);
    --in_flight_;
    if (ret.drop == 1) {
      ++dropped_queue_nic_;
    } else {
      ++dropped_by_nf_;
    }
    return;
  }
  auto handle = pool().acquire(ret.bytes.size());
  if (!handle) {
    // Home pool exhausted at re-entry: the returning frame has nowhere to
    // land, which on hardware is a NIC-side loss.
    assert(in_flight_ > 0);
    --in_flight_;
    ++dropped_queue_nic_;
    return;
  }
  Packet* p = handle.release();
  std::copy(ret.bytes.begin(), ret.bytes.end(), p->data().begin());
  p->set_id(ret.packet_id);
  p->set_ingress_time(ret.ingress_time);
  p->restore_path_counters(ret.pcie_crossings, ret.hops);
  advance(p, i + 1, Hop{home_.server, Location::kSmartNic});
}

void ChainSimulator::forward_to_server(Packet* p, std::size_t to_server,
                                       std::function<void(Hop)> continuation) {
  ++server_hops_total_;
  (void)p;  // pure pipeline delay: no queueing model on the rack fabric
  kernel_->schedule_after(
      inter_server_latency_,
      [to_server, cont = std::move(continuation)]() mutable {
        cont(Hop{to_server, Location::kSmartNic});
      });
}

void ChainSimulator::cross_pcie(Packet* p, const NodeBinding& binding,
                                std::function<void()> continuation) {
  auto& pcie = binding.hw->pcie();
  p->note_pcie_crossing();
  pcie.note_crossing(p->wire_bytes());
  ++crossings_total_;

  const SimTime link_service = serialization_delay(p->wire_bytes(), pcie.bandwidth());
  const SimTime driver_service =
      serialization_delay(p->wire_bytes(), pcie.host_cost_rate());
  const SimTime fixed = pcie.fixed_cost();

  ServerDevices* devices = binding.devices;
  const bool accepted = devices->pcie.submit(
      link_service, [this, p, devices, fixed, driver_service,
                     cont = std::move(continuation)]() mutable {
        kernel_->schedule_after(
            fixed,
            [this, p, devices, driver_service, cont = std::move(cont)]() mutable {
              // Host-side DMA/driver work shares the CPU with NF processing.
              const bool ok = devices->cpu.submit(driver_service, std::move(cont));
              if (!ok) {
                drop(p, dropped_queue_cpu_);
              }
            });
      });
  if (!accepted) {
    drop(p, dropped_queue_pcie_);
  }
}

void ChainSimulator::process_node(Packet* p, std::size_t idx) {
  const auto& node = chain_.node(idx);
  const Location loc = node.location;
  const NodeBinding& binding = bindings_[idx];
  FcfsServer& srv =
      loc == Location::kSmartNic ? binding.devices->nic : binding.devices->cpu;

  // Mean per-packet occupancy: a sampling NF (load_factor < 1) spends the
  // full service time on a fraction of packets; the simulator applies the
  // expectation uniformly, matching ChainAnalyzer (DESIGN.md §2).
  const SimTime service =
      serialization_delay(p->wire_bytes(), node.spec.capacity.on(loc)) *
      node.spec.load_factor;

  const SimTime submitted_at = kernel_->now();
  const bool accepted = srv.submit(service, [this, p, idx, loc, submitted_at] {
    if (metering()) {
      auto& stats = node_stats_[idx];
      ++stats.packets;
      stats.residence.record(kernel_->now() - submitted_at);
    }
    p->note_hop();
    const Verdict verdict = nfs_[idx]->handle(*p, kernel_->now());
    if (verdict == Verdict::kDrop) {
      drop(p, dropped_by_nf_);
      return;
    }
    // pass_ratio below the functional drop rate models policy drops for NF
    // configurations the functional object does not encode (spec-level
    // annotation; 1.0 in the paper scenarios).
    const auto& spec = chain_.node(idx).spec;
    if (spec.pass_ratio < 1.0 && rng_.chance(1.0 - spec.pass_ratio)) {
      drop(p, dropped_by_nf_);
      return;
    }
    const std::size_t at_server = bindings_[idx].server;
    kernel_->schedule_after(calibration_.nf_overhead(loc),
                            [this, p, idx, loc, at_server] {
                              advance(p, idx + 1, Hop{at_server, loc});
                            });
  });
  if (!accepted) {
    drop(p, loc == Location::kSmartNic ? dropped_queue_nic_ : dropped_queue_cpu_);
  }
}

void ChainSimulator::deliver(Packet* p) {
  ++delivered_;
  if (capture_ != nullptr) {
    capture_->append(kernel_->now(), p->data());
  }
  if (metering()) {
    ++measured_delivered_;
    measured_delivered_bytes_ += p->size();
    measured_crossings_ += p->pcie_crossings();
    latency_.record(kernel_->now() - p->ingress_time());
  }
  finish(p);
}

void ChainSimulator::drop(Packet* p, std::uint64_t& counter) {
  ++counter;
  finish(p);
}

void ChainSimulator::finish(Packet* p) {
  assert(in_flight_ > 0);
  --in_flight_;
  pool().release(p);
}

void ChainSimulator::start() {
  assert(!ran_ && "a ChainSimulator instance runs once");
  ran_ = true;
  if (active_start_ > SimTime::zero()) {
    kernel_->schedule_at(active_start_, [this] { schedule_next_arrival(); });
    return;
  }
  schedule_next_arrival();
}

SimReport ChainSimulator::build_report() const {
  const SimTime duration = kernel_->horizon();
  const SimTime warmup = kernel_->warmup();

  SimReport report;
  report.in_flight_at_end = in_flight_;
  report.duration = duration;
  report.injected = injected_;
  report.delivered = delivered_;
  report.dropped_queue_nic = dropped_queue_nic_;
  report.dropped_queue_cpu = dropped_queue_cpu_;
  report.dropped_queue_pcie = dropped_queue_pcie_;
  report.dropped_by_nf = dropped_by_nf_;
  report.latency = latency_;
  report.measured_delivered = measured_delivered_;

  const SimTime window = duration - warmup;
  report.egress_goodput = rate_of(Bytes{measured_delivered_bytes_}, window);
  report.offered_rate = rate_of(Bytes{measured_injected_bytes_}, window);
  report.smartnic_utilization = home_.devices->nic.utilization(duration);
  report.cpu_utilization = home_.devices->cpu.utilization(duration);
  report.pcie_utilization = home_.devices->pcie.utilization(duration);
  report.per_node.reserve(chain_.size());
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    NodeSummary node;
    node.name = chain_.node(i).spec.name;
    node.location = chain_.node(i).location;
    node.packets = node_stats_[i].packets;
    if (node_stats_[i].packets > 0) {
      node.mean_residence = node_stats_[i].residence.mean();
      node.p99_residence = node_stats_[i].residence.quantile(0.99);
    }
    report.per_node.push_back(std::move(node));
  }
  report.pcie_crossings = crossings_total_;
  report.inter_server_hops = server_hops_total_;
  report.mean_crossings_per_packet =
      measured_delivered_ > 0
          ? static_cast<double>(measured_crossings_) /
                static_cast<double>(measured_delivered_)
          : 0.0;
  return report;
}

SimReport ChainSimulator::run(SimTime duration, SimTime warmup) {
  assert(owned_kernel_ != nullptr &&
         "run() is standalone-mode only; embedded simulators are driven by "
         "their shared kernel (start/build_report)");
  assert(warmup < duration);
  start();
  kernel_->run(duration, warmup);
  return build_report();
}

}  // namespace pam
