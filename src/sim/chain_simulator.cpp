#include "sim/chain_simulator.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"
#include "nf/nf_factory.hpp"
#include "packet/packet_builder.hpp"

namespace pam {

namespace {
constexpr std::size_t kPcieQueueFactor = 4;  // link ring deeper than NF queues
}

ChainSimulator::ChainSimulator(ServiceChain chain, Server& server,
                               TrafficSourceConfig traffic, Calibration calibration)
    : chain_(std::move(chain)),
      server_(&server),
      calibration_(calibration),
      traffic_(std::move(traffic)),
      pool_(4096),
      nic_server_(queue_, "smartnic", calibration.queue_capacity_packets),
      cpu_server_(queue_, "cpu", calibration.queue_capacity_packets),
      pcie_server_(queue_, "pcie",
                   calibration.queue_capacity_packets * kPcieQueueFactor),
      flowgen_(traffic_.flows, traffic_.seed),
      rng_(traffic_.seed ^ 0xabcdef0123456789ull) {
  chain_.validate();
  nfs_.reserve(chain_.size());
  for (const auto& node : chain_.nodes()) {
    nfs_.push_back(make_network_function(node.spec.type, node.spec.name,
                                         node.spec.load_factor));
  }
  paused_.assign(chain_.size(), false);
  buffers_.resize(chain_.size());
  node_stats_.resize(chain_.size());
}

ChainSimulator::~ChainSimulator() {
  // Release anything still parked so the pool's leak check stays meaningful.
  for (auto& buffer : buffers_) {
    for (auto& parked : buffer) {
      pool_.release(parked.pkt);
    }
    buffer.clear();
  }
}

void ChainSimulator::schedule_at(SimTime at, std::function<void()> fn) {
  queue_.schedule_at(at, std::move(fn));
}

void ChainSimulator::schedule_after(SimTime delay, std::function<void()> fn) {
  queue_.schedule_after(delay, std::move(fn));
}

void ChainSimulator::schedule_periodic(SimTime start, SimTime period,
                                       std::function<void()> fn) {
  assert(period.ns() > 0);
  // Self-rescheduling closure.  `shared_fn` keeps a single callback
  // instance across firings (stateful callbacks keep their state); the
  // simulator owns the holder via periodic_tasks_ and the closure captures
  // only a weak_ptr to it, so no shared_ptr cycle forms and everything is
  // reclaimed with the simulator.
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  auto holder = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_holder = holder;
  *holder = [this, period, shared_fn, weak_holder]() {
    if (stopped_ || queue_.now() > horizon_) {
      return;
    }
    (*shared_fn)();
    if (auto strong = weak_holder.lock()) {
      queue_.schedule_after(period, *strong);
    }
  };
  queue_.schedule_at(start, *holder);
  periodic_tasks_.push_back(std::move(holder));
}

void ChainSimulator::replace_nf(std::size_t i, std::unique_ptr<NetworkFunction> fresh) {
  assert(fresh != nullptr);
  nfs_.at(i) = std::move(fresh);
}

void ChainSimulator::set_node_location(std::size_t i, Location loc) {
  chain_.set_location(i, loc);
}

void ChainSimulator::pause_node(std::size_t i) { paused_.at(i) = true; }

void ChainSimulator::resume_node(std::size_t i) {
  paused_.at(i) = false;
  auto parked = std::move(buffers_.at(i));
  buffers_.at(i).clear();
  for (auto& entry : parked) {
    advance(entry.pkt, i, entry.side);
  }
}

Gbps ChainSimulator::observed_ingress_rate(SimTime window) const {
  const SimTime cutoff = queue_.now() - window;
  while (!ingress_window_.empty() && ingress_window_.front().first < cutoff) {
    ingress_window_.pop_front();
  }
  std::uint64_t bytes = 0;
  for (const auto& [t, b] : ingress_window_) {
    bytes += b;
  }
  return rate_of(Bytes{bytes}, window);
}

void ChainSimulator::schedule_next_arrival() {
  if (stopped_) {
    return;
  }
  if (traffic_.replay && !traffic_.replay->empty()) {
    schedule_replay_arrival();
    return;
  }
  const Gbps rate = traffic_.rate.at(queue_.now());
  const std::size_t next_size = traffic_.sizes.sample(rng_);
  if (rate.value() <= 1e-9) {
    // Source idle; poll the profile again shortly.
    queue_.schedule_after(SimTime::milliseconds(1.0),
                          [this] { schedule_next_arrival(); });
    return;
  }
  const SimTime gap_mean = serialization_delay(Bytes{next_size}, rate);
  const SimTime gap =
      traffic_.process == ArrivalProcess::kPoisson
          ? SimTime::nanoseconds(static_cast<std::int64_t>(
                rng_.exponential(static_cast<double>(gap_mean.ns()))))
          : gap_mean;
  queue_.schedule_after(gap, [this, next_size] {
    if (stopped_ || queue_.now() >= horizon_) {
      return;
    }
    inject(next_size);
    schedule_next_arrival();
  });
}

void ChainSimulator::schedule_replay_arrival() {
  const auto& records = traffic_.replay->records();
  if (replay_pos_ >= records.size()) {
    if (!traffic_.replay_loop) {
      return;  // capture exhausted
    }
    // Repeat back-to-back: next epoch starts one mean inter-frame gap
    // after the previous capture's last frame.
    const SimTime span = traffic_.replay->duration();
    const SimTime gap = SimTime::nanoseconds(
        span.ns() / static_cast<std::int64_t>(records.size()) + 1);
    replay_epoch_ += span + gap;
    replay_pos_ = 0;
  }
  const SimTime first_ts = records.front().timestamp;
  const TraceRecord& rec = records[replay_pos_];
  const SimTime at = replay_epoch_ + (rec.timestamp - first_ts);
  ++replay_pos_;
  queue_.schedule_at(at, [this, &rec] {
    if (stopped_ || queue_.now() >= horizon_) {
      return;
    }
    inject_frame(rec.frame);
    schedule_next_arrival();
  });
}

void ChainSimulator::account_injection(Packet* p) {
  p->set_id(++injected_);
  p->set_ingress_time(queue_.now());
  ++in_flight_;
  ingress_window_.emplace_back(queue_.now(),
                               static_cast<std::uint64_t>(p->size()));
  if (ingress_window_.size() > 65536) {
    ingress_window_.pop_front();
  }
  if (metering()) {
    ++measured_injected_;
    measured_injected_bytes_ += p->size();
  }
  advance(p, 0, side_of(chain_.ingress()));
}

void ChainSimulator::inject(std::size_t size_bytes) {
  auto handle = pool_.acquire(size_bytes);
  if (!handle) {
    // Mempool exhausted — the sender itself is backpressured; account as a
    // NIC-side loss.
    ++dropped_queue_nic_;
    ++injected_;
    return;
  }
  Packet* p = handle.release();
  PacketBuilder builder;
  builder.size(size_bytes)
      .flow(flowgen_.next(rng_))
      .payload_seed(rng_.next_u64());
  builder.build_into(*p);
  account_injection(p);
}

void ChainSimulator::inject_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < Packet::kMinSize) {
    ++dropped_queue_nic_;  // runt frame: the NIC MAC would discard it
    ++injected_;
    return;
  }
  auto handle = pool_.acquire(frame.size());
  if (!handle) {
    ++dropped_queue_nic_;
    ++injected_;
    return;
  }
  Packet* p = handle.release();
  std::copy(frame.begin(), frame.end(), p->data().begin());
  account_injection(p);
}

void ChainSimulator::advance(Packet* p, std::size_t idx, Location side) {
  if (idx >= chain_.size()) {
    const Location egress_side = side_of(chain_.egress());
    if (side != egress_side) {
      cross_pcie(p, [this, p] { deliver(p); });
    } else {
      deliver(p);
    }
    return;
  }
  if (paused_[idx]) {
    buffers_[idx].push_back(Parked{p, side});
    ++total_buffered_;
    return;
  }
  const Location loc = chain_.location_of(idx);
  if (loc != side) {
    cross_pcie(p, [this, p, idx] { process_node(p, idx); });
  } else {
    process_node(p, idx);
  }
}

void ChainSimulator::cross_pcie(Packet* p, std::function<void()> continuation) {
  auto& pcie = server_->pcie();
  p->note_pcie_crossing();
  pcie.note_crossing(p->wire_bytes());
  ++crossings_total_;

  const SimTime link_service = serialization_delay(p->wire_bytes(), pcie.bandwidth());
  const SimTime driver_service =
      serialization_delay(p->wire_bytes(), pcie.host_cost_rate());
  const SimTime fixed = pcie.fixed_cost();

  const bool accepted = pcie_server_.submit(
      link_service, [this, p, fixed, driver_service,
                     cont = std::move(continuation)]() mutable {
        queue_.schedule_after(
            fixed, [this, p, driver_service, cont = std::move(cont)]() mutable {
              // Host-side DMA/driver work shares the CPU with NF processing.
              const bool ok = cpu_server_.submit(driver_service, std::move(cont));
              if (!ok) {
                drop(p, dropped_queue_cpu_);
              }
            });
      });
  if (!accepted) {
    drop(p, dropped_queue_pcie_);
  }
}

void ChainSimulator::process_node(Packet* p, std::size_t idx) {
  const auto& node = chain_.node(idx);
  const Location loc = node.location;
  FcfsServer& srv = loc == Location::kSmartNic ? nic_server_ : cpu_server_;

  // Mean per-packet occupancy: a sampling NF (load_factor < 1) spends the
  // full service time on a fraction of packets; the simulator applies the
  // expectation uniformly, matching ChainAnalyzer (DESIGN.md §2).
  const SimTime service =
      serialization_delay(p->wire_bytes(), node.spec.capacity.on(loc)) *
      node.spec.load_factor;

  const SimTime submitted_at = queue_.now();
  const bool accepted = srv.submit(service, [this, p, idx, loc, submitted_at] {
    if (metering()) {
      auto& stats = node_stats_[idx];
      ++stats.packets;
      stats.residence.record(queue_.now() - submitted_at);
    }
    p->note_hop();
    const Verdict verdict = nfs_[idx]->handle(*p, queue_.now());
    if (verdict == Verdict::kDrop) {
      drop(p, dropped_by_nf_);
      return;
    }
    // pass_ratio below the functional drop rate models policy drops for NF
    // configurations the functional object does not encode (spec-level
    // annotation; 1.0 in the paper scenarios).
    const auto& spec = chain_.node(idx).spec;
    if (spec.pass_ratio < 1.0 && rng_.chance(1.0 - spec.pass_ratio)) {
      drop(p, dropped_by_nf_);
      return;
    }
    queue_.schedule_after(calibration_.nf_overhead(loc),
                          [this, p, idx, loc] { advance(p, idx + 1, loc); });
  });
  if (!accepted) {
    drop(p, loc == Location::kSmartNic ? dropped_queue_nic_ : dropped_queue_cpu_);
  }
}

void ChainSimulator::deliver(Packet* p) {
  ++delivered_;
  if (capture_ != nullptr) {
    capture_->append(queue_.now(), p->data());
  }
  if (metering()) {
    ++measured_delivered_;
    measured_delivered_bytes_ += p->size();
    measured_crossings_ += p->pcie_crossings();
    latency_.record(queue_.now() - p->ingress_time());
  }
  finish(p);
}

void ChainSimulator::drop(Packet* p, std::uint64_t& counter) {
  ++counter;
  finish(p);
}

void ChainSimulator::finish(Packet* p) {
  assert(in_flight_ > 0);
  --in_flight_;
  pool_.release(p);
}

SimReport ChainSimulator::run(SimTime duration, SimTime warmup) {
  assert(!ran_ && "ChainSimulator::run is single-shot");
  assert(warmup < duration);
  ran_ = true;
  warmup_ = warmup;
  horizon_ = duration;

  schedule_next_arrival();
  queue_.run_until(duration);

  // Drain: stop the source, let queued work complete unmetered, so packet
  // conservation is exact.  Whatever remains in flight afterwards is parked
  // at paused nodes (returned to the pool by the destructor).
  stopped_ = true;
  while (queue_.run_one()) {
  }

  SimReport report;
  report.in_flight_at_end = in_flight_;
  report.duration = duration;
  report.injected = injected_;
  report.delivered = delivered_;
  report.dropped_queue_nic = dropped_queue_nic_;
  report.dropped_queue_cpu = dropped_queue_cpu_;
  report.dropped_queue_pcie = dropped_queue_pcie_;
  report.dropped_by_nf = dropped_by_nf_;
  report.latency = latency_;
  report.measured_delivered = measured_delivered_;

  const SimTime window = duration - warmup;
  report.egress_goodput = rate_of(Bytes{measured_delivered_bytes_}, window);
  report.offered_rate = rate_of(Bytes{measured_injected_bytes_}, window);
  report.smartnic_utilization = nic_server_.utilization(duration);
  report.cpu_utilization = cpu_server_.utilization(duration);
  report.pcie_utilization = pcie_server_.utilization(duration);
  report.per_node.reserve(chain_.size());
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    NodeSummary node;
    node.name = chain_.node(i).spec.name;
    node.location = chain_.node(i).location;
    node.packets = node_stats_[i].packets;
    if (node_stats_[i].packets > 0) {
      node.mean_residence = node_stats_[i].residence.mean();
      node.p99_residence = node_stats_[i].residence.quantile(0.99);
    }
    report.per_node.push_back(std::move(node));
  }
  report.pcie_crossings = crossings_total_;
  report.mean_crossings_per_packet =
      measured_delivered_ > 0
          ? static_cast<double>(measured_crossings_) /
                static_cast<double>(measured_delivered_)
          : 0.0;
  return report;
}

}  // namespace pam
