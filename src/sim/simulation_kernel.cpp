#include "sim/simulation_kernel.hpp"

#include <cassert>

#include "chain/calibration.hpp"

namespace pam {

namespace {
constexpr std::size_t kPcieQueueFactor = 4;  // link ring deeper than NF queues
}

SimulationKernel::SimulationKernel(std::size_t pool_capacity)
    : pool_(pool_capacity) {}

void SimulationKernel::schedule_periodic(SimTime start, SimTime period,
                                         std::function<void()> fn) {
  assert(period.ns() > 0);
  // Self-rescheduling closure.  `shared_fn` keeps a single callback
  // instance across firings (stateful callbacks keep their state); the
  // kernel owns the holder via periodic_tasks_ and the closure captures
  // only a weak_ptr to it, so no shared_ptr cycle forms and everything is
  // reclaimed with the kernel.
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  auto holder = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_holder = holder;
  *holder = [this, period, shared_fn, weak_holder]() {
    if (stopped_ || queue_.now() > horizon_) {
      return;
    }
    (*shared_fn)();
    if (auto strong = weak_holder.lock()) {
      queue_.schedule_after(period, *strong);
    }
  };
  queue_.schedule_at(start, *holder);
  periodic_tasks_.push_back(std::move(holder));
}

void SimulationKernel::arm(SimTime duration, SimTime warmup) {
  assert(!ran_ && "SimulationKernel::arm/run is single-shot");
  assert(warmup < duration);
  ran_ = true;
  warmup_ = warmup;
  horizon_ = duration;
}

void SimulationKernel::run(SimTime duration, SimTime warmup) {
  arm(duration, warmup);

  queue_.run_until(duration);

  // Drain: sources observe stopped(), queued work completes unmetered, so
  // whatever was in flight at the horizon is delivered, dropped, or parked.
  begin_drain();
  while (queue_.run_one()) {
  }
}

ServerDevices::ServerDevices(EventQueue& queue, const Calibration& calibration,
                             const std::string& tag)
    : nic(queue, "smartnic" + tag, calibration.queue_capacity_packets),
      cpu(queue, "cpu" + tag, calibration.queue_capacity_packets),
      pcie(queue, "pcie" + tag,
           calibration.queue_capacity_packets * kPcieQueueFactor) {}

}  // namespace pam
