// Deterministic discrete-event scheduler.
//
// Events at equal timestamps execute in scheduling order (a monotone
// sequence number breaks ties), which makes every simulation bit-for-bit
// reproducible for a given seed — a property the tests rely on.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace pam {

class EventQueue {
 public:
  /// The DES kernel's one sanctioned type-erasure boundary: every event
  /// is an erased callable, so lint rule P003 (no std::function on the
  /// packet path) deliberately exempts src/sim — and .clang-tidy's
  /// AllowedTypes mirrors it.  Per-packet code in packet/nf/device must
  /// still take concrete callables or interfaces, never std::function.
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Timestamp of the earliest pending event.  Only meaningful when
  /// !empty(); the epoch loop uses it to fast-forward idle shards past
  /// empty barrier quanta without walking them one epoch at a time.
  [[nodiscard]] SimTime next_at() const noexcept { return heap_.top().at; }

  /// Schedules `action` at absolute time `at` (>= now, clamped otherwise).
  void schedule_at(SimTime at, Action action);

  /// Schedules `action` after `delay` from now.
  void schedule_after(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Runs the earliest event.  Returns false when the queue is empty.
  bool run_one();

  /// Runs events until simulated time exceeds `until` or the queue drains.
  /// The clock ends at exactly `until`.
  void run_until(SimTime until);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace pam
