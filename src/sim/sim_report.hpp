// Measurement output of one simulation run.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "nf/nf_spec.hpp"

namespace pam {

/// Per-chain-node measurement: residence time (queue wait + service) at the
/// node's device, per visit, during the measurement window.
struct NodeSummary {
  std::string name;
  Location location = Location::kSmartNic;
  std::uint64_t packets = 0;
  SimTime mean_residence;
  SimTime p99_residence;
};

struct SimReport {
  // --- packet accounting (whole run, including warmup) ---------------------
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_queue_nic = 0;   ///< drop-tail at the SmartNIC
  std::uint64_t dropped_queue_cpu = 0;   ///< drop-tail at the CPU
  std::uint64_t dropped_queue_pcie = 0;  ///< drop-tail at the link
  std::uint64_t dropped_by_nf = 0;       ///< policy drops (ACL, limiter, ...)
  std::uint64_t in_flight_at_end = 0;

  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_queue_nic + dropped_queue_cpu + dropped_queue_pcie + dropped_by_nf;
  }
  /// Conservation invariant: every injected packet is accounted for.
  [[nodiscard]] bool conserved() const noexcept {
    return injected == delivered + dropped_total() + in_flight_at_end;
  }

  // --- measurement window (after warmup) -----------------------------------
  LatencyRecorder latency;
  Gbps egress_goodput;   ///< delivered bytes over the measurement window
  Gbps offered_rate;     ///< injected bytes over the measurement window
  std::uint64_t measured_delivered = 0;

  // --- device-level observations (whole run) -------------------------------
  double smartnic_utilization = 0.0;
  double cpu_utilization = 0.0;
  double pcie_utilization = 0.0;
  std::uint64_t pcie_crossings = 0;
  /// Rack-fabric forwardings to/from other servers (cluster mode; 0 for a
  /// standalone single-server run).
  std::uint64_t inter_server_hops = 0;
  double mean_crossings_per_packet = 0.0;

  SimTime duration = SimTime::zero();

  /// One entry per chain node, in chain order.
  std::vector<NodeSummary> per_node;

  [[nodiscard]] std::string summary() const;
};

}  // namespace pam
