#include "sim/fcfs_server.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pam {

FcfsServer::FcfsServer(EventQueue& queue, std::string name, std::size_t queue_capacity)
    : queue_(queue), name_(std::move(name)), capacity_(queue_capacity) {
  assert(queue_capacity > 0);
}

void FcfsServer::set_speed(double speed) noexcept {
  assert(speed > 0.0);
  speed_ = speed;
}

bool FcfsServer::submit(SimTime service, Completion done) {
  assert(service >= SimTime::zero());
  if (speed_ != 1.0) {
    service = service * (1.0 / speed_);
  }
  if (busy_) {
    if (waiting_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    waiting_.push_back(Job{service, std::move(done)});
    max_queue_ = std::max(max_queue_, waiting_.size());
    return true;
  }
  start(Job{service, std::move(done)});
  return true;
}

void FcfsServer::start(Job job) {
  busy_ = true;
  busy_time_ += job.service;
  queue_.schedule_after(job.service, [this, done = std::move(job.done)]() mutable {
    ++completed_;
    // Completion may submit more work; run it before dequeuing so FIFO
    // order among already-queued jobs is preserved (new submissions land
    // behind them).
    Completion local = std::move(done);
    if (!waiting_.empty()) {
      Job next = std::move(waiting_.front());
      waiting_.pop_front();
      start(std::move(next));
    } else {
      busy_ = false;
    }
    local();
  });
}

}  // namespace pam
