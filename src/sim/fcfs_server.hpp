// Single FCFS server with a drop-tail queue.
//
// Each physical resource in the simulated server — the SmartNIC's NPU
// complex, the CPU complex, the PCIe link — is one FcfsServer.  Jobs carry
// an explicit service time, so one server naturally realises the paper's
// resource model: a device is saturated exactly when the sum of
// (rate_i x service_i) across its resident NFs reaches 1.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/event_queue.hpp"

namespace pam {

class FcfsServer {
 public:
  using Completion = std::function<void()>;

  FcfsServer(EventQueue& queue, std::string name, std::size_t queue_capacity);

  /// Enqueues a job needing `service` busy time; `done` runs at completion.
  /// Returns false (and runs nothing) when the drop-tail queue is full —
  /// the caller owns whatever the job carried.
  [[nodiscard]] bool submit(SimTime service, Completion done);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t queue_length() const noexcept { return waiting_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }

  /// Service-rate multiplier for capacity fades (hostile-link scenarios):
  /// every subsequently submitted job's service time is divided by `speed`.
  /// 1.0 restores nominal capacity; values in (0, 1) slow the device down.
  void set_speed(double speed) noexcept;
  [[nodiscard]] double speed() const noexcept { return speed_; }

  [[nodiscard]] std::uint64_t jobs_completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t jobs_rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::size_t max_queue_seen() const noexcept { return max_queue_; }
  [[nodiscard]] SimTime busy_time() const noexcept { return busy_time_; }

  /// Busy fraction over [0, elapsed].
  [[nodiscard]] double utilization(SimTime elapsed) const noexcept {
    return elapsed.ns() > 0
               ? static_cast<double>(busy_time_.ns()) / static_cast<double>(elapsed.ns())
               : 0.0;
  }

 private:
  struct Job {
    SimTime service;
    Completion done;
  };

  void start(Job job);

  EventQueue& queue_;
  std::string name_;
  std::size_t capacity_;
  std::deque<Job> waiting_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t max_queue_ = 0;
  SimTime busy_time_ = SimTime::zero();
  double speed_ = 1.0;
};

}  // namespace pam
