#include "sim/sim_report.hpp"

#include "common/strings.hpp"

namespace pam {

std::string SimReport::summary() const {
  std::string out;
  out += format("duration %s | injected %llu, delivered %llu, dropped %llu "
                "(nicQ %llu, cpuQ %llu, pcieQ %llu, nf %llu), in-flight %llu\n",
                duration.to_string().c_str(),
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(dropped_total()),
                static_cast<unsigned long long>(dropped_queue_nic),
                static_cast<unsigned long long>(dropped_queue_cpu),
                static_cast<unsigned long long>(dropped_queue_pcie),
                static_cast<unsigned long long>(dropped_by_nf),
                static_cast<unsigned long long>(in_flight_at_end));
  out += format("offered %s -> goodput %s | latency %s\n",
                offered_rate.to_string().c_str(),
                egress_goodput.to_string().c_str(), latency.summary().c_str());
  out += format("util S=%.3f C=%.3f PCIe=%.3f | crossings/pkt %.2f",
                smartnic_utilization, cpu_utilization, pcie_utilization,
                mean_crossings_per_packet);
  return out;
}

}  // namespace pam
