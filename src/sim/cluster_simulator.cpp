#include "sim/cluster_simulator.hpp"

#include <algorithm>
#include <cassert>

#include "common/strings.hpp"

namespace pam {

ClusterSimulator::ClusterSimulator(std::size_t num_servers, Calibration calibration,
                                   SimTime inter_server_latency)
    : calibration_(calibration),
      kernel_(4096 * std::max<std::size_t>(num_servers, 1)),
      inter_server_latency_(inter_server_latency) {
  assert(num_servers > 0);
  servers_.reserve(num_servers);
  devices_.reserve(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) {
    servers_.push_back(std::make_unique<Server>(Server::paper_testbed()));
    devices_.push_back(std::make_unique<ServerDevices>(
        kernel_.queue(), calibration_, format("[%zu]", s)));
  }
  alive_.assign(num_servers, true);
}

std::size_t ClusterSimulator::add_chain(ServiceChain chain,
                                        TrafficSourceConfig traffic,
                                        std::size_t home_server) {
  assert(home_server < servers_.size());
  auto sim = std::make_unique<ChainSimulator>(
      kernel_, *devices_.at(home_server), home_server, std::move(chain),
      *servers_.at(home_server), std::move(traffic), calibration_);
  sim->set_inter_server_latency(inter_server_latency_);
  chains_.push_back(std::move(sim));
  home_of_.push_back(home_server);
  return chains_.size() - 1;
}

void ClusterSimulator::move_node(std::size_t c, std::size_t node,
                                 std::size_t target, Location loc) {
  ChainSimulator& sim = *chains_.at(c);
  sim.set_node_server(node, target, *devices_.at(target), *servers_.at(target));
  sim.set_node_location(node, loc);
}

double ClusterSimulator::server_nic_load(std::size_t s) const {
  return devices_.at(s)->nic.utilization(kernel_.now());
}

double ClusterSimulator::server_cpu_load(std::size_t s) const {
  return devices_.at(s)->cpu.utilization(kernel_.now());
}

double ClusterSimulator::server_load(std::size_t s) const {
  return std::max(server_nic_load(s), server_cpu_load(s));
}

void ClusterSimulator::fail_server(std::size_t s) { alive_.at(s) = false; }

void ClusterSimulator::recover_server(std::size_t s) { alive_.at(s) = true; }

std::size_t ClusterSimulator::servers_alive() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

void ClusterSimulator::set_fabric_latency(SimTime latency) {
  inter_server_latency_ = latency;
  for (auto& chain : chains_) {
    chain->set_inter_server_latency(latency);
  }
}

void ClusterSimulator::set_slot_speed(std::size_t s, double speed) {
  assert(speed > 0.0);
  devices_.at(s)->nic.set_speed(speed);
  devices_.at(s)->cpu.set_speed(speed);
}

void ClusterSimulator::begin() {
  for (auto& chain : chains_) {
    chain->start();
  }
}

ClusterReport ClusterSimulator::run(SimTime duration, SimTime warmup) {
  begin();
  kernel_.run(duration, warmup);
  return collect(duration);
}

ClusterReport ClusterSimulator::collect(SimTime duration) {
  ClusterReport report;
  report.servers = servers_.size();
  report.duration = duration;
  report.per_server.resize(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerSummary& sum = report.per_server[s];
    sum.server_id = s;
    sum.smartnic_utilization = devices_[s]->nic.utilization(duration);
    sum.cpu_utilization = devices_[s]->cpu.utilization(duration);
    sum.pcie_utilization = devices_[s]->pcie.utilization(duration);
  }

  double goodput = 0.0;
  double offered = 0.0;
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    SimReport chain_report = chains_[c]->build_report();
    const std::size_t home = home_of_[c];
    ServerSummary& sum = report.per_server[home];
    ++sum.chains_homed;
    sum.injected += chain_report.injected;
    sum.delivered += chain_report.delivered;
    sum.dropped += chain_report.dropped_total();

    report.injected += chain_report.injected;
    report.delivered += chain_report.delivered;
    report.dropped_total += chain_report.dropped_total();
    report.in_flight_at_end += chain_report.in_flight_at_end;
    report.pcie_crossings += chain_report.pcie_crossings;
    report.inter_server_hops += chain_report.inter_server_hops;
    report.cross_rack_hops += chains_[c]->cross_rack_hops();
    report.latency.merge(chain_report.latency);
    goodput += chain_report.egress_goodput.value();
    offered += chain_report.offered_rate.value();

    const ServiceChain& chain = chains_[c]->chain();
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chains_[c]->node_remote(i)) {
        continue;  // leased to another rack; credited to its host slot there
      }
      ++report.per_server[chains_[c]->node_server(i)].nodes_hosted;
    }
    report.per_chain.push_back(std::move(chain_report));
  }
  report.egress_goodput = Gbps{goodput};
  report.offered_rate = Gbps{offered};
  return report;
}

std::string ClusterReport::summary() const {
  std::string out = format(
      "cluster: %zu server(s), %zu chain(s) | injected %llu, delivered %llu, "
      "dropped %llu, in-flight %llu | offered %s -> goodput %s\n",
      servers, per_chain.size(), static_cast<unsigned long long>(injected),
      static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(dropped_total),
      static_cast<unsigned long long>(in_flight_at_end),
      offered_rate.to_string().c_str(), egress_goodput.to_string().c_str());
  out += format("fleet latency %s | pcie crossings %llu, inter-server hops %llu",
                latency.summary().c_str(),
                static_cast<unsigned long long>(pcie_crossings),
                static_cast<unsigned long long>(inter_server_hops));
  return out;
}

}  // namespace pam
