#include "sim/shard_fabric.hpp"

#include <cassert>
#include <utility>

namespace pam {

namespace {
// Pre-sized so the steady state of a busy mailbox never reallocates; a
// frame burst beyond this merely grows the vector once and keeps the larger
// capacity (amortised, not per-packet).
constexpr std::size_t kMailboxReserve = 64;
constexpr std::size_t kArenaReserve = 128;
}  // namespace

ShardFabric::ShardFabric(std::size_t shards)
    : shards_(shards),
      boxes_(shards * shards),
      arenas_(shards),
      frames_from_(shards, 0) {
  assert(shards > 0);
  for (Mailbox& mb : boxes_) {
    mb.frames.reserve(kMailboxReserve);
  }
  for (auto& arena : arenas_) {
    arena.reserve(kArenaReserve);
  }
}

FabricFrame ShardFabric::acquire(std::size_t src) {
  auto& arena = arenas_[src];
  if (arena.empty()) {
    return FabricFrame{};
  }
  FabricFrame frame = std::move(arena.back());
  arena.pop_back();
  return frame;
}

void ShardFabric::send(std::size_t src, std::size_t dst, FabricFrame frame) {
  assert(src != dst);
  Mailbox& mb = box(src, dst);
  frame.seq = mb.next_seq++;
  mb.frames.push_back(std::move(frame));
  ++frames_from_[src];
}

void ShardFabric::release(std::size_t shard, FabricFrame frame) {
  // Reset to a blank frame but keep the byte buffer's capacity — that is
  // the recycled storage the next acquire() hands back out.
  std::vector<std::uint8_t> bytes = std::move(frame.bytes);
  bytes.clear();
  frame = FabricFrame{};
  frame.bytes = std::move(bytes);
  arenas_[shard].push_back(std::move(frame));
}

void ShardFabric::exchange(
    const std::function<void(std::size_t, std::size_t, FabricFrame&&)>& deliver) {
  for (std::size_t dst = 0; dst < shards_; ++dst) {
    for (std::size_t src = 0; src < shards_; ++src) {
      Mailbox& mb = box(src, dst);
      if (mb.frames.empty()) {
        continue;
      }
      // Frames are already in seq order (appended under the sender's own
      // sequence counter); draining in push order realises (src, seq).
      for (FabricFrame& frame : mb.frames) {
        ++frames_exchanged_;
        deliver(src, dst, std::move(frame));
      }
      mb.frames.clear();  // capacity retained
    }
  }
}

bool ShardFabric::idle() const noexcept {
  for (const Mailbox& mb : boxes_) {
    if (!mb.frames.empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace pam
