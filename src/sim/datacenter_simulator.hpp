// Datacenter-scale simulation: R racks x S servers, one kernel shard per
// rack, advancing in deterministic lock-step epochs.
//
// This is FNCS-style federated conservative time synchronization applied
// inside one process.  Each rack is a full ClusterSimulator — its own
// EventQueue, PacketPool, ServerDevices and embedded ChainSimulators — and
// the only coupling between racks is the cross-rack fabric, whose one-way
// latency is the epoch quantum.  That latency is the lookahead guarantee:
// a packet serialized onto the fabric during epoch k cannot arrive before
// the barrier that ends epoch k, so every shard can run a full epoch
// without observing any other shard.
//
// The epoch loop:
//
//   1. every shard runs `advance_until(k * quantum)` — in parallel when a
//      thread pool is configured (sim/epoch_executor.hpp), shards touching
//      only their own state plus their own mailbox row of the ShardFabric;
//   2. barrier: the main thread alone drains all mailboxes in (dst, src,
//      seq) order, scheduling each frame's arrival at sent_at + latency on
//      the destination shard;
//   3. the barrier hook fires (the DatacenterOrchestrator's control tier:
//      sensing rack pressure, committing cross-rack leases);
//   4. repeat to the horizon, then keep epoch-cycling with stopped sources
//      until every queue and mailbox is dry, so conservation is exact.
//
// Because mailbox drain order is fixed and each shard's intra-epoch
// execution is single-threaded DES, the run is bit-identical for
// threads=1 and threads=N — the thread count never appears in any result.
//
// Cross-rack placement is lease-based: a chain node moved to another rack
// (ControlEvent kind `cross_rack_move`) keeps its home-chain identity, but
// its functional NF instance travels to the host rack, where each visit
// occupies the host slot's SmartNIC like any resident NF.  Packets reach
// it as FabricFrames and return the same way, so in steady state the shard
// boundary costs serialization into recycled arena storage, never a heap
// allocation per packet.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chain/calibration.hpp"
#include "common/rng.hpp"
#include "nf/network_function.hpp"
#include "sim/cluster_simulator.hpp"
#include "sim/shard_fabric.hpp"

namespace pam {

/// Per-shard totals of one datacenter run (report + invariant surface).
struct ShardSummary {
  std::size_t shard = 0;
  std::size_t first_server = 0;  ///< global id of the rack's first slot
  std::size_t servers = 0;
  std::uint64_t events_executed = 0;  ///< DES events on this shard's queue
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t in_flight_at_end = 0;
  std::uint64_t frames_out = 0;  ///< fabric frames this shard sent
};

struct DatacenterReport {
  /// Fleet-merged view with global server and chain ids — same shape a
  /// single-rack ClusterSimulator produces, so downstream consumers are
  /// agnostic to sharding.
  ClusterReport cluster;
  std::vector<ShardSummary> shards;
  std::uint64_t cross_rack_frames = 0;
  std::uint64_t epochs = 0;
};

class DatacenterSimulator {
 public:
  struct Options {
    std::size_t shards = 2;
    std::size_t servers_total = 2;  ///< must be divisible by shards
    Calibration calibration = Calibration::defaults();
    SimTime intra_rack_latency = SimTime::microseconds(50.0);
    /// One-way cross-rack fabric latency == the epoch quantum (lookahead).
    SimTime cross_rack_latency = SimTime::microseconds(100.0);
  };

  explicit DatacenterSimulator(const Options& options);

  DatacenterSimulator(const DatacenterSimulator&) = delete;
  DatacenterSimulator& operator=(const DatacenterSimulator&) = delete;

  // --- topology -------------------------------------------------------------

  [[nodiscard]] std::size_t num_racks() const noexcept { return racks_.size(); }
  [[nodiscard]] std::size_t per_rack() const noexcept { return per_rack_; }
  [[nodiscard]] std::size_t num_servers() const noexcept {
    return racks_.size() * per_rack_;
  }
  [[nodiscard]] SimTime quantum() const noexcept {
    return options_.cross_rack_latency;
  }
  [[nodiscard]] ClusterSimulator& rack(std::size_t r) { return *racks_.at(r); }

  [[nodiscard]] std::size_t rack_of(std::size_t global_server) const noexcept {
    return global_server / per_rack_;
  }
  [[nodiscard]] std::size_t slot_of(std::size_t global_server) const noexcept {
    return global_server % per_rack_;
  }
  [[nodiscard]] std::size_t global_server(std::size_t r, std::size_t slot) const noexcept {
    return r * per_rack_ + slot;
  }

  // --- chains (global ids, in add order) ------------------------------------

  /// Adds a chain homed on global slot `home`. Returns the global chain id.
  std::size_t add_chain(ServiceChain chain, TrafficSourceConfig traffic,
                        std::size_t home);
  [[nodiscard]] std::size_t num_chains() const noexcept { return chain_map_.size(); }
  [[nodiscard]] std::size_t home_rack_of(std::size_t c) const {
    return chain_map_.at(c).rack;
  }
  [[nodiscard]] std::size_t local_chain_of(std::size_t c) const {
    return chain_map_.at(c).local;
  }
  [[nodiscard]] std::size_t home_server_of(std::size_t c) const {
    return chain_home_.at(c);
  }
  [[nodiscard]] ChainSimulator& chain_sim(std::size_t c) {
    const ChainRef& ref = chain_map_.at(c);
    return racks_[ref.rack]->chain_sim(ref.local);
  }

  // --- global-id signals (orchestrator + experiment layer) ------------------

  [[nodiscard]] double server_load(std::size_t gs) const {
    return racks_[rack_of(gs)]->server_load(slot_of(gs));
  }
  [[nodiscard]] double server_nic_load(std::size_t gs) const {
    return racks_[rack_of(gs)]->server_nic_load(slot_of(gs));
  }
  [[nodiscard]] double server_cpu_load(std::size_t gs) const {
    return racks_[rack_of(gs)]->server_cpu_load(slot_of(gs));
  }
  [[nodiscard]] bool server_alive(std::size_t gs) const {
    return racks_[rack_of(gs)]->server_alive(slot_of(gs));
  }

  // --- scheduled perturbations (failure / hostile kinds) --------------------

  /// Schedules `fn` on rack `r`'s kernel — the event must touch only that
  /// rack's state (shard isolation).
  void schedule_on_rack(std::size_t r, SimTime at, std::function<void()> fn);
  /// Re-shapes every rack's *intra*-rack fabric at `at` (one rack-local
  /// event per shard; the cross-rack quantum is fixed at construction).
  void schedule_fabric_latency(SimTime at, SimTime latency);

  // --- cross-rack leases (barrier-time only) --------------------------------

  /// Creates a lease: node `node` of chain `c` moves to global slot
  /// `target`, taking its NF instance along.  Returns false (no state
  /// changed) when the target slot is dead.  Leases are permanent for the
  /// remainder of the run.
  bool commit_lease(std::size_t c, std::size_t node, std::size_t target);
  [[nodiscard]] std::size_t lease_count() const noexcept { return leases_.size(); }
  /// Host slot (global id) of the lease for (c, node); only valid when the
  /// node is remote.
  [[nodiscard]] std::size_t lease_host(std::size_t c, std::size_t node) const;

  // --- epoch loop hooks -----------------------------------------------------

  /// Runs at every epoch barrier, after the frame exchange, with all shard
  /// kernels quiescent at the barrier time.  `draining` is true once the
  /// horizon has passed.
  void set_barrier_hook(std::function<void(SimTime, bool)> hook) {
    barrier_hook_ = std::move(hook);
  }
  /// While it returns true the drain phase keeps cycling even with empty
  /// queues (e.g. a cross-rack move still pending commit).
  void set_drain_gate(std::function<bool()> gate) { drain_gate_ = std::move(gate); }

  /// Runs the whole datacenter to the horizon and drains.  Single-shot.
  /// `threads` sets the epoch executor's pool size; results are
  /// bit-identical for any value.
  [[nodiscard]] DatacenterReport run(SimTime duration, SimTime warmup,
                                     std::size_t threads);

 private:
  struct ChainRef {
    std::size_t rack = 0;
    std::size_t local = 0;
  };

  /// A chain node leased to a remote rack: the NF instance, a copy of the
  /// node spec it runs under, and the host-side visit stats merged into the
  /// home chain's report at collect time.
  struct Lease {
    std::size_t chain = 0;
    std::size_t node = 0;
    std::size_t host_rack = 0;
    std::size_t host_slot = 0;  ///< rack-local
    NfSpec spec;
    std::unique_ptr<NetworkFunction> nf;
    Rng rng;  ///< lease-local pass_ratio stream (deterministic lineage)
    std::uint64_t packets = 0;     ///< metered visits
    LatencyRecorder residence;
  };

  [[nodiscard]] Lease* find_lease(std::size_t c, std::size_t node);

  void send_visit(std::size_t src_rack, std::size_t c, std::size_t node,
                  const Packet& p);
  void deliver_frame(std::size_t dst, FabricFrame&& frame);
  void host_visit(std::size_t host, FabricFrame frame);
  void send_return(std::size_t host, std::size_t c, std::size_t node,
                   FabricFrame::Outcome outcome, const Packet& p);
  void home_return(std::size_t home, FabricFrame frame);
  void exchange();

  [[nodiscard]] DatacenterReport assemble(SimTime duration);

  Options options_;
  std::size_t per_rack_;
  std::vector<std::unique_ptr<ClusterSimulator>> racks_;
  ShardFabric fabric_;
  std::vector<ChainRef> chain_map_;     ///< global chain -> (rack, local)
  std::vector<std::size_t> chain_home_; ///< global chain -> global home slot
  std::vector<std::unique_ptr<Lease>> leases_;
  std::function<void(SimTime, bool)> barrier_hook_;
  std::function<bool()> drain_gate_;
  std::uint64_t epochs_ = 0;
  bool ran_ = false;
};

}  // namespace pam
