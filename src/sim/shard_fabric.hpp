// Cross-rack frame exchange for the sharded datacenter kernel.
//
// When a chain node is leased to another rack (a cross_rack_move), packets
// reaching it are serialized into FabricFrames — the byte buffer plus the
// simulator metadata that must survive the crossing — and buffered into the
// per-(src,dst) mailbox of the sending shard.  Mailboxes are drained only
// at epoch barriers, in deterministic (dst, src, seq) order, which is what
// makes the parallel run bit-identical to the single-threaded one.
//
// Ownership protocol (this is what keeps the exchange lock-free and
// TSan-clean): between two barriers, mailbox row `src` is written only by
// shard `src`'s thread; nobody reads it.  At the barrier every shard thread
// is parked, and the main thread alone moves frames out.  Frame storage is
// recycled through per-shard arenas (`acquire`/`release`) so the steady
// state allocates nothing per packet — buffers keep their capacity across
// reuse (pam_lint rule D005).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"

namespace pam {

/// One packet on the rack-to-rack fabric: routing, the wire bytes, and the
/// path metadata a Packet carries (id, ingress timestamp, PCIe crossings,
/// hop count).  Visit frames travel home -> host; return frames travel
/// host -> home carrying the visit's outcome and the (possibly rewritten)
/// bytes.
struct FabricFrame {
  enum class Kind : std::uint8_t { kVisit = 0, kReturn = 1 };
  enum class Outcome : std::uint8_t {
    kPassed = 0,
    kDroppedNic,   ///< drop-tail at the host SmartNIC
    kDroppedNf,    ///< policy drop by the leased NF
  };

  Kind kind = Kind::kVisit;
  Outcome outcome = Outcome::kPassed;
  std::size_t chain = 0;  ///< global chain id
  std::size_t node = 0;   ///< index of the leased node within the chain
  std::uint64_t seq = 0;  ///< per-mailbox sequence; stamps the drain order
  SimTime sent_at;        ///< send time on the source shard's clock

  std::vector<std::uint8_t> bytes;  ///< the frame on the wire
  std::uint64_t packet_id = 0;
  SimTime ingress_time;
  std::uint32_t pcie_crossings = 0;
  std::uint32_t hops = 0;
};

class ShardFabric {
 public:
  explicit ShardFabric(std::size_t shards);

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// Pops a recycled frame from `src`'s arena (or grows it once).  Callable
  /// only from the shard's own thread mid-epoch.
  [[nodiscard]] FabricFrame acquire(std::size_t src);

  /// Buffers `frame` into mailbox (src, dst), stamping its sequence number.
  /// Callable only from shard `src`'s thread mid-epoch.
  void send(std::size_t src, std::size_t dst, FabricFrame frame);

  /// Returns a consumed frame's storage to `shard`'s arena.  Callable only
  /// from the shard's own thread (or at a barrier).
  void release(std::size_t shard, FabricFrame frame);

  /// Drains every mailbox in (dst, src, seq) order, invoking
  /// `deliver(src, dst, frame)` for each frame.  Mailbox vectors are
  /// cleared but keep their capacity.  Barrier-only: every shard thread
  /// must be parked.
  void exchange(
      const std::function<void(std::size_t, std::size_t, FabricFrame&&)>& deliver);

  /// True when no mailbox holds a frame (used by the drain loop).
  [[nodiscard]] bool idle() const noexcept;

  [[nodiscard]] std::uint64_t frames_exchanged() const noexcept {
    return frames_exchanged_;
  }
  /// Frames sent by shard `src` over the whole run (per-shard report field).
  [[nodiscard]] std::uint64_t frames_from(std::size_t src) const {
    return frames_from_[src];
  }

 private:
  struct Mailbox {
    std::vector<FabricFrame> frames;
    std::uint64_t next_seq = 0;
  };

  [[nodiscard]] Mailbox& box(std::size_t src, std::size_t dst) {
    return boxes_[src * shards_ + dst];
  }

  std::size_t shards_;
  std::vector<Mailbox> boxes_;                   ///< src-major (src, dst) grid
  std::vector<std::vector<FabricFrame>> arenas_; ///< per-shard recycle stacks
  std::vector<std::uint64_t> frames_from_;
  std::uint64_t frames_exchanged_ = 0;
};

}  // namespace pam
