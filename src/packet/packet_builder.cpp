#include "packet/packet_builder.hpp"

#include <algorithm>
#include <cassert>

namespace pam {

void PacketBuilder::build_into(Packet& pkt) const {
  assert(wire_size_ >= Packet::kMinSize);
  // Header-only reset: every byte below is written explicitly (headers) or
  // by the deterministic payload fill, which always covers [42, size) since
  // size >= kMinSize; zeroed headers cover non-TCP/UDP protocols too.
  pkt.reset_headers(wire_size_);
  auto buf = pkt.data();

  EthernetHeader eth;
  eth.src = src_mac_;
  eth.dst = dst_mac_;
  eth.ether_type = EthernetHeader::kEtherTypeIpv4;
  eth.write(buf);

  Ipv4Header ip;
  ip.src = tuple_.src_ip;
  ip.dst = tuple_.dst_ip;
  ip.protocol = tuple_.proto;
  ip.ttl = ttl_;
  ip.dscp = dscp_;
  ip.total_length = static_cast<std::uint16_t>(wire_size_ - EthernetHeader::kSize);

  const auto l3 = pkt.l3();
  const auto l4 = pkt.l4();
  if (tuple_.proto == IpProto::kTcp) {
    TcpHeader tcp;
    tcp.src_port = tuple_.src_port;
    tcp.dst_port = tuple_.dst_port;
    tcp.flags = tcp_flags_;
    tcp.seq = static_cast<std::uint32_t>(payload_seed_);
    if (l4.size() >= TcpHeader::kMinSize) {
      tcp.write(l4);
    }
  } else if (tuple_.proto == IpProto::kUdp) {
    UdpHeader udp;
    udp.src_port = tuple_.src_port;
    udp.dst_port = tuple_.dst_port;
    udp.length = static_cast<std::uint16_t>(
        wire_size_ - EthernetHeader::kSize - Ipv4Header::kMinSize);
    if (l4.size() >= UdpHeader::kSize) {
      udp.write(l4);
    }
  }
  // IP header written last: total_length already set, checksum covers finals.
  ip.write(l3);

  auto payload = pkt.payload();
  if (!payload.empty()) {
    // Deterministic pseudo-random fill so DPI scans non-trivial content.
    std::uint64_t state = payload_seed_ ^ 0x6a09e667f3bcc909ull;
    for (auto& byte : payload) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      byte = static_cast<std::uint8_t>(state & 0xff);
    }
    if (!payload_text_.empty()) {
      const std::size_t n = std::min(payload_text_.size(), payload.size());
      std::copy_n(payload_text_.data(), n,
                  reinterpret_cast<char*>(payload.data()));
    }
  }
}

}  // namespace pam
