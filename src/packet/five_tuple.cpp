#include "packet/five_tuple.hpp"

#include "common/strings.hpp"

namespace pam {
namespace {

constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::string FiveTuple::to_string() const {
  const char* proto_name = proto == IpProto::kTcp ? "tcp"
                           : proto == IpProto::kUdp ? "udp"
                                                    : "icmp";
  return format("%s %s:%u -> %s:%u", proto_name,
                ipv4_to_string(src_ip).c_str(), src_port,
                ipv4_to_string(dst_ip).c_str(), dst_port);
}

std::uint64_t hash_value(const FiveTuple& t) noexcept {
  const std::uint64_t a = (static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip;
  const std::uint64_t b = (static_cast<std::uint64_t>(t.src_port) << 32) |
                          (static_cast<std::uint64_t>(t.dst_port) << 16) |
                          static_cast<std::uint64_t>(t.proto);
  return mix64(mix64(a) ^ (b + 0x9e3779b97f4a7c15ull));
}

}  // namespace pam
