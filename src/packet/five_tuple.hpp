// The classic connection 5-tuple, used as the flow key by the Monitor, NAT
// and Load Balancer NFs and by the traffic generator.

#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "packet/headers.hpp"

namespace pam {

struct FiveTuple {
  std::uint32_t src_ip = 0;   ///< host byte order
  std::uint32_t dst_ip = 0;   ///< host byte order
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kUdp;

  auto operator<=>(const FiveTuple&) const noexcept = default;

  /// The reverse direction of the same conversation.
  [[nodiscard]] FiveTuple reversed() const noexcept {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }

  [[nodiscard]] std::string to_string() const;
};

/// 64-bit mix hash (based on the murmur3 finaliser), stable across platforms
/// so simulation results are reproducible everywhere.
[[nodiscard]] std::uint64_t hash_value(const FiveTuple& t) noexcept;

struct FiveTupleHash {
  [[nodiscard]] std::size_t operator()(const FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(hash_value(t));
  }
};

}  // namespace pam
