// Fluent construction of well-formed frames, used by the traffic generator
// and by tests.  Produces a frame whose Ethernet/IPv4/L4 headers are valid
// wire bytes (checksummed) and whose payload is filled deterministically so
// the DPI NF has something to scan.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "packet/five_tuple.hpp"
#include "packet/packet.hpp"

namespace pam {

class PacketBuilder {
 public:
  PacketBuilder& size(std::size_t wire_size) noexcept {
    wire_size_ = wire_size;
    return *this;
  }
  PacketBuilder& flow(const FiveTuple& t) noexcept {
    tuple_ = t;
    return *this;
  }
  PacketBuilder& src_mac(const MacAddress& m) noexcept { src_mac_ = m; return *this; }
  PacketBuilder& dst_mac(const MacAddress& m) noexcept { dst_mac_ = m; return *this; }
  PacketBuilder& ttl(std::uint8_t v) noexcept { ttl_ = v; return *this; }
  PacketBuilder& dscp(std::uint8_t v) noexcept { dscp_ = v; return *this; }
  PacketBuilder& tcp_flags(std::uint8_t flags) noexcept { tcp_flags_ = flags; return *this; }
  PacketBuilder& payload_seed(std::uint64_t seed) noexcept { payload_seed_ = seed; return *this; }
  /// Plants `text` at the start of the payload (for DPI signature tests).
  PacketBuilder& payload_text(std::string_view text) noexcept { payload_text_ = text; return *this; }

  /// Writes headers + payload into `pkt` (resizing it to the configured wire
  /// size).  The packet is valid: parseable headers, correct IP checksum.
  void build_into(Packet& pkt) const;

 private:
  std::size_t wire_size_ = Packet::kMinSize;
  FiveTuple tuple_{};
  MacAddress src_mac_{0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  MacAddress dst_mac_{0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  std::uint8_t ttl_ = 64;
  std::uint8_t dscp_ = 0;
  std::uint8_t tcp_flags_ = TcpHeader::kFlagAck;
  std::uint64_t payload_seed_ = 0;
  std::string_view payload_text_{};
};

}  // namespace pam
