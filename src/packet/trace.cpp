#include "packet/trace.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/strings.hpp"

namespace pam {
namespace {

constexpr char kMagic[8] = {'P', 'A', 'M', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint16_t kVersion = 1;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
bool get(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  return static_cast<bool>(in);
}

}  // namespace

void PacketTrace::append(SimTime timestamp, std::span<const std::uint8_t> frame) {
  TraceRecord rec;
  rec.timestamp = timestamp;
  rec.frame.assign(frame.begin(), frame.end());
  records_.push_back(std::move(rec));
}

Bytes PacketTrace::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& rec : records_) {
    total += rec.frame.size();
  }
  return Bytes{total};
}

SimTime PacketTrace::duration() const noexcept {
  if (records_.size() < 2) {
    return SimTime::zero();
  }
  return records_.back().timestamp - records_.front().timestamp;
}

Gbps PacketTrace::average_rate() const noexcept {
  const SimTime span = duration();
  if (span <= SimTime::zero()) {
    return Gbps::zero();
  }
  return rate_of(total_bytes(), span);
}

void PacketTrace::write_to(std::ostream& out) const {
  out.write(kMagic, sizeof kMagic);
  put(out, kVersion);
  for (const auto& rec : records_) {
    put(out, static_cast<std::uint64_t>(rec.timestamp.ns()));
    put(out, static_cast<std::uint32_t>(rec.frame.size()));
    out.write(reinterpret_cast<const char*>(rec.frame.data()),
              static_cast<std::streamsize>(rec.frame.size()));
  }
}

Result<PacketTrace> PacketTrace::read_from(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return Error{"not a PAMTRACE capture (bad magic)"};
  }
  std::uint16_t version = 0;
  if (!get(in, version) || version != kVersion) {
    return Error{format("unsupported trace version %u", version)};
  }
  PacketTrace trace;
  while (true) {
    std::uint64_t ts = 0;
    if (!get(in, ts)) {
      if (in.eof()) {
        break;  // clean end
      }
      return Error{"truncated record header"};
    }
    std::uint32_t len = 0;
    if (!get(in, len)) {
      return Error{"truncated record length"};
    }
    if (len > 64 * 1024) {
      return Error{format("frame length %u exceeds sanity bound", len)};
    }
    TraceRecord rec;
    rec.timestamp = SimTime::nanoseconds(static_cast<std::int64_t>(ts));
    rec.frame.resize(len);
    in.read(reinterpret_cast<char*>(rec.frame.data()), len);
    if (!in) {
      return Error{"truncated frame payload"};
    }
    trace.records_.push_back(std::move(rec));
  }
  return trace;
}

Result<bool> PacketTrace::save(const std::string& path) const {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    return Error{"cannot open '" + path + "' for writing"};
  }
  write_to(out);
  return out.good() ? Result<bool>{true}
                    : Result<bool>{Error{"write to '" + path + "' failed"}};
}

Result<PacketTrace> PacketTrace::load(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return Error{"cannot open '" + path + "'"};
  }
  return read_from(in);
}

}  // namespace pam
