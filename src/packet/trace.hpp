// Packet traces: a compact binary capture format (a pcap stand-in that
// needs no external tooling) plus in-memory trace objects the traffic
// generator can replay — the DPDK "send this capture" workflow.
//
// Format (little-endian):
//   magic "PAMTRACE" (8 bytes) | version u16 | record*
//   record := timestamp_ns u64 | frame_len u32 | frame bytes
//
// Readers fail loudly on bad magic/version/truncation.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"

namespace pam {

struct TraceRecord {
  SimTime timestamp;
  std::vector<std::uint8_t> frame;

  [[nodiscard]] Bytes size() const noexcept { return Bytes{frame.size()}; }
};

/// An in-memory capture: ordered records.
class PacketTrace {
 public:
  void append(SimTime timestamp, std::span<const std::uint8_t> frame);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const TraceRecord& at(std::size_t i) const { return records_.at(i); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }

  /// Total captured bytes.
  [[nodiscard]] Bytes total_bytes() const noexcept;

  /// Capture duration (last - first timestamp); zero for < 2 records.
  [[nodiscard]] SimTime duration() const noexcept;

  /// Average offered rate of the capture.
  [[nodiscard]] Gbps average_rate() const noexcept;

  /// Serialise to / parse from the binary format.
  void write_to(std::ostream& out) const;
  [[nodiscard]] static Result<PacketTrace> read_from(std::istream& in);

  /// File convenience wrappers.
  [[nodiscard]] Result<bool> save(const std::string& path) const;
  [[nodiscard]] static Result<PacketTrace> load(const std::string& path);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace pam
