// Packet representation.
//
// Mirrors a DPDK mbuf at the level the library needs: a contiguous byte
// buffer holding real Ethernet/IPv4/L4 headers plus payload, a cached parse
// of the flow key, and simulator metadata (ingress timestamp, hop count,
// PCIe crossing count) used by the measurement layer.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "packet/five_tuple.hpp"
#include "packet/headers.hpp"

namespace pam {

class PacketPool;

class Packet {
 public:
  /// Minimum Ethernet frame (without FCS) and standard MTU frame bounds used
  /// by the generators; the paper sweeps exactly this range.
  static constexpr std::size_t kMinSize = 64;
  static constexpr std::size_t kMaxSize = 1500;
  /// L2+L3+L4 header region (Ethernet 14 + IPv4 20 + TCP 20): the bytes a
  /// parser may read before any producer wrote them.
  static constexpr std::size_t kHeaderBytes = 54;

  Packet() = default;
  explicit Packet(std::size_t wire_size) { reset(wire_size); }

  Packet(const Packet&) = default;
  Packet& operator=(const Packet&) = default;
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  /// Re-initialises for a frame of `wire_size` bytes (fully zero-filled).
  void reset(std::size_t wire_size);

  /// Fast re-initialisation for recycling: zeroes only the kHeaderBytes
  /// header region (plus any newly grown tail, which vector growth
  /// value-initialises); payload bytes beyond the headers keep whatever the
  /// previous occupant left and MUST be overwritten by the producer
  /// (PacketBuilder fills the whole payload; trace replay copies the whole
  /// frame).  This is what PacketPool::acquire uses — recycling a 1500B
  /// frame no longer memsets the full MTU.
  void reset_headers(std::size_t wire_size);

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] Bytes wire_bytes() const noexcept { return Bytes{data_.size()}; }
  [[nodiscard]] std::span<std::uint8_t> data() noexcept { return data_; }
  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept { return data_; }

  /// Byte views of the embedded headers (L2 at offset 0, L3 at 14, L4 at 34).
  [[nodiscard]] std::span<std::uint8_t> l3() noexcept;
  [[nodiscard]] std::span<const std::uint8_t> l3() const noexcept;
  [[nodiscard]] std::span<std::uint8_t> l4() noexcept;
  [[nodiscard]] std::span<const std::uint8_t> l4() const noexcept;
  [[nodiscard]] std::span<std::uint8_t> payload() noexcept;
  [[nodiscard]] std::span<const std::uint8_t> payload() const noexcept;

  /// Parses headers out of the buffer.  Returns nullopt for truncated or
  /// non-IPv4 frames.
  [[nodiscard]] std::optional<Ipv4Header> ipv4() const noexcept;
  [[nodiscard]] std::optional<FiveTuple> five_tuple() const noexcept;

  /// Rewrites the IPv4 src/dst (host order) in place, recomputing the IP
  /// checksum — what the NAT and load balancer do.
  void rewrite_ipv4_addrs(std::uint32_t new_src, std::uint32_t new_dst) noexcept;
  /// Rewrites L4 ports in place (TCP or UDP inferred from the IP header).
  void rewrite_ports(std::uint16_t new_src, std::uint16_t new_dst) noexcept;

  // --- simulator metadata ---------------------------------------------------

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  void set_id(std::uint64_t id) noexcept { id_ = id; }

  [[nodiscard]] SimTime ingress_time() const noexcept { return ingress_time_; }
  void set_ingress_time(SimTime t) noexcept { ingress_time_ = t; }

  [[nodiscard]] std::uint32_t pcie_crossings() const noexcept { return pcie_crossings_; }
  void note_pcie_crossing() noexcept { ++pcie_crossings_; }

  [[nodiscard]] std::uint32_t hops() const noexcept { return hops_; }
  void note_hop() noexcept { ++hops_; }

  /// Restores path counters after a reset().  Used by re-framing NFs
  /// (tunnel encap/decap) that rebuild the buffer mid-chain but must not
  /// erase the packet's travel history.
  void restore_path_counters(std::uint32_t crossings, std::uint32_t hops) noexcept {
    pcie_crossings_ = crossings;
    hops_ = hops;
  }

 private:
  std::vector<std::uint8_t> data_;
  std::uint64_t id_ = 0;
  SimTime ingress_time_ = SimTime::zero();
  std::uint32_t pcie_crossings_ = 0;
  std::uint32_t hops_ = 0;
};

/// Owning handle returned by PacketPool; releases back to the pool on
/// destruction (RAII, never leaks even on exceptional paths).
class PacketPtr {
 public:
  PacketPtr() = default;
  PacketPtr(Packet* p, PacketPool* pool) noexcept : p_(p), pool_(pool) {}
  ~PacketPtr();

  PacketPtr(const PacketPtr&) = delete;
  PacketPtr& operator=(const PacketPtr&) = delete;
  PacketPtr(PacketPtr&& o) noexcept : p_(o.p_), pool_(o.pool_) {
    o.p_ = nullptr;
    o.pool_ = nullptr;
  }
  PacketPtr& operator=(PacketPtr&& o) noexcept;

  [[nodiscard]] Packet* get() const noexcept { return p_; }
  [[nodiscard]] Packet& operator*() const noexcept { return *p_; }
  [[nodiscard]] Packet* operator->() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  /// Releases ownership without returning to the pool (used when handing a
  /// packet to a component that manages lifetime manually).
  [[nodiscard]] Packet* release() noexcept {
    Packet* out = p_;
    p_ = nullptr;
    pool_ = nullptr;
    return out;
  }

 private:
  Packet* p_ = nullptr;
  PacketPool* pool_ = nullptr;
};

}  // namespace pam
