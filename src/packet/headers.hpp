// Wire-format protocol headers: Ethernet II, IPv4, TCP, UDP.
//
// The NFs in this library do real header work (the firewall classifies, the
// NAT rewrites addresses and fixes checksums), so headers are parsed from and
// written to actual byte buffers in network byte order, exactly as a DPDK
// application would see them.  All multi-byte loads/stores go through
// explicit byte operations — no type punning, no alignment assumptions.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace pam {

// ---------------------------------------------------------------------------
// Byte-order helpers (operate on explicit buffers; safe on any alignment).
// ---------------------------------------------------------------------------

[[nodiscard]] std::uint16_t load_be16(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint32_t load_be32(const std::uint8_t* p) noexcept;
void store_be16(std::uint8_t* p, std::uint16_t v) noexcept;
void store_be32(std::uint8_t* p, std::uint32_t v) noexcept;

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

using MacAddress = std::array<std::uint8_t, 6>;

[[nodiscard]] std::string mac_to_string(const MacAddress& mac);

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  static constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
  static constexpr std::uint16_t kEtherTypeArp = 0x0806;

  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ether_type = kEtherTypeIpv4;

  /// Parses from `buf`; returns nullopt when the buffer is too short.
  [[nodiscard]] static std::optional<EthernetHeader> parse(std::span<const std::uint8_t> buf) noexcept;
  /// Writes kSize bytes; requires buf.size() >= kSize.
  void write(std::span<std::uint8_t> buf) const noexcept;
};

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;   ///< header + payload, bytes
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  std::uint16_t checksum = 0;       ///< as parsed; recomputed on write
  std::uint32_t src = 0;            ///< host byte order
  std::uint32_t dst = 0;            ///< host byte order

  [[nodiscard]] static std::optional<Ipv4Header> parse(std::span<const std::uint8_t> buf) noexcept;

  /// Writes a 20-byte header with a freshly computed checksum.
  void write(std::span<std::uint8_t> buf) const noexcept;

  /// RFC 1071 checksum over an arbitrary buffer.
  [[nodiscard]] static std::uint16_t compute_checksum(std::span<const std::uint8_t> buf) noexcept;

  /// True when the checksum field in `buf` verifies.
  [[nodiscard]] static bool verify_checksum(std::span<const std::uint8_t> header_bytes) noexcept;
};

// ---------------------------------------------------------------------------
// TCP / UDP
// ---------------------------------------------------------------------------

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;
  static constexpr std::uint8_t kFlagFin = 0x01;
  static constexpr std::uint8_t kFlagSyn = 0x02;
  static constexpr std::uint8_t kFlagRst = 0x04;
  static constexpr std::uint8_t kFlagAck = 0x10;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;

  [[nodiscard]] static std::optional<TcpHeader> parse(std::span<const std::uint8_t> buf) noexcept;
  void write(std::span<std::uint8_t> buf) const noexcept;

  [[nodiscard]] bool syn() const noexcept { return (flags & kFlagSyn) != 0; }
  [[nodiscard]] bool fin() const noexcept { return (flags & kFlagFin) != 0; }
  [[nodiscard]] bool rst() const noexcept { return (flags & kFlagRst) != 0; }
  [[nodiscard]] bool ack_set() const noexcept { return (flags & kFlagAck) != 0; }
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< header + payload

  [[nodiscard]] static std::optional<UdpHeader> parse(std::span<const std::uint8_t> buf) noexcept;
  void write(std::span<std::uint8_t> buf) const noexcept;
};

}  // namespace pam
