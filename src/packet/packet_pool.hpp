// Freelist packet pool, analogous to a DPDK mempool: packets are recycled
// rather than heap-allocated per arrival, which keeps long simulator runs
// allocation-free in steady state and makes leaks (packets never returned)
// observable via in_use().

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "packet/packet.hpp"

namespace pam {

class PacketPool {
 public:
  /// `initial_capacity` packets are pre-allocated; the pool grows on demand
  /// (hard cap at `max_capacity` — acquire beyond it reports exhaustion,
  /// mimicking mempool depletion).
  explicit PacketPool(std::size_t initial_capacity = 1024,
                      std::size_t max_capacity = 1 << 20);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Acquire a packet sized to `wire_size` with a zeroed header region
  /// (Packet::reset_headers — payload bytes of a recycled packet are the
  /// producer's to overwrite).  Returns an empty PacketPtr on pool
  /// exhaustion.
  [[nodiscard]] PacketPtr acquire(std::size_t wire_size);

  /// Return a packet to the freelist.  Called by PacketPtr's destructor.
  void release(Packet* p) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return all_.size(); }
  [[nodiscard]] std::size_t in_use() const noexcept { return all_.size() - free_.size(); }
  [[nodiscard]] std::size_t allocations() const noexcept { return allocations_; }
  [[nodiscard]] std::size_t exhaustions() const noexcept { return exhaustions_; }

 private:
  std::size_t max_capacity_;
  std::vector<std::unique_ptr<Packet>> all_;
  std::vector<Packet*> free_;
  std::size_t allocations_ = 0;
  std::size_t exhaustions_ = 0;
};

}  // namespace pam
