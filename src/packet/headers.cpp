#include "packet/headers.hpp"

#include <cassert>
#include <cstdio>

namespace pam {

std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

std::string mac_to_string(const MacAddress& mac) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
                mac[0], mac[1], mac[2], mac[3], mac[4], mac[5]);
  return buf;
}

std::optional<EthernetHeader> EthernetHeader::parse(std::span<const std::uint8_t> buf) noexcept {
  if (buf.size() < kSize) {
    return std::nullopt;
  }
  EthernetHeader h;
  std::copy(buf.begin(), buf.begin() + 6, h.dst.begin());
  std::copy(buf.begin() + 6, buf.begin() + 12, h.src.begin());
  h.ether_type = load_be16(buf.data() + 12);
  return h;
}

void EthernetHeader::write(std::span<std::uint8_t> buf) const noexcept {
  assert(buf.size() >= kSize);
  std::copy(dst.begin(), dst.end(), buf.begin());
  std::copy(src.begin(), src.end(), buf.begin() + 6);
  store_be16(buf.data() + 12, ether_type);
}

std::optional<Ipv4Header> Ipv4Header::parse(std::span<const std::uint8_t> buf) noexcept {
  if (buf.size() < kMinSize) {
    return std::nullopt;
  }
  const std::uint8_t version_ihl = buf[0];
  if ((version_ihl >> 4) != 4) {
    return std::nullopt;
  }
  const std::size_t ihl_bytes = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  if (ihl_bytes < kMinSize || buf.size() < ihl_bytes) {
    return std::nullopt;
  }
  Ipv4Header h;
  h.dscp = static_cast<std::uint8_t>(buf[1] >> 2);
  h.total_length = load_be16(buf.data() + 2);
  h.identification = load_be16(buf.data() + 4);
  h.ttl = buf[8];
  h.protocol = static_cast<IpProto>(buf[9]);
  h.checksum = load_be16(buf.data() + 10);
  h.src = load_be32(buf.data() + 12);
  h.dst = load_be32(buf.data() + 16);
  return h;
}

void Ipv4Header::write(std::span<std::uint8_t> buf) const noexcept {
  assert(buf.size() >= kMinSize);
  buf[0] = 0x45;  // version 4, IHL 5 words
  buf[1] = static_cast<std::uint8_t>(dscp << 2);
  store_be16(buf.data() + 2, total_length);
  store_be16(buf.data() + 4, identification);
  store_be16(buf.data() + 6, 0);  // flags/fragment: DF not modelled
  buf[8] = ttl;
  buf[9] = static_cast<std::uint8_t>(protocol);
  store_be16(buf.data() + 10, 0);  // checksum placeholder
  store_be32(buf.data() + 12, src);
  store_be32(buf.data() + 16, dst);
  const std::uint16_t sum = compute_checksum(buf.first(kMinSize));
  store_be16(buf.data() + 10, sum);
}

std::uint16_t Ipv4Header::compute_checksum(std::span<const std::uint8_t> buf) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < buf.size(); i += 2) {
    sum += load_be16(buf.data() + i);
  }
  if (i < buf.size()) {
    sum += static_cast<std::uint32_t>(buf[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

bool Ipv4Header::verify_checksum(std::span<const std::uint8_t> header_bytes) noexcept {
  if (header_bytes.size() < kMinSize) {
    return false;
  }
  // Checksum over a header including its checksum field must yield 0.
  return compute_checksum(header_bytes.first(kMinSize)) == 0;
}

std::optional<TcpHeader> TcpHeader::parse(std::span<const std::uint8_t> buf) noexcept {
  if (buf.size() < kMinSize) {
    return std::nullopt;
  }
  TcpHeader h;
  h.src_port = load_be16(buf.data());
  h.dst_port = load_be16(buf.data() + 2);
  h.seq = load_be32(buf.data() + 4);
  h.ack = load_be32(buf.data() + 8);
  h.flags = buf[13];
  h.window = load_be16(buf.data() + 14);
  return h;
}

void TcpHeader::write(std::span<std::uint8_t> buf) const noexcept {
  assert(buf.size() >= kMinSize);
  store_be16(buf.data(), src_port);
  store_be16(buf.data() + 2, dst_port);
  store_be32(buf.data() + 4, seq);
  store_be32(buf.data() + 8, ack);
  buf[12] = 0x50;  // data offset 5 words
  buf[13] = flags;
  store_be16(buf.data() + 14, window);
  store_be16(buf.data() + 16, 0);  // checksum: not modelled for TCP payloads
  store_be16(buf.data() + 18, 0);  // urgent pointer
}

std::optional<UdpHeader> UdpHeader::parse(std::span<const std::uint8_t> buf) noexcept {
  if (buf.size() < kSize) {
    return std::nullopt;
  }
  UdpHeader h;
  h.src_port = load_be16(buf.data());
  h.dst_port = load_be16(buf.data() + 2);
  h.length = load_be16(buf.data() + 4);
  return h;
}

void UdpHeader::write(std::span<std::uint8_t> buf) const noexcept {
  assert(buf.size() >= kSize);
  store_be16(buf.data(), src_port);
  store_be16(buf.data() + 2, dst_port);
  store_be16(buf.data() + 4, length);
  store_be16(buf.data() + 6, 0);  // checksum optional for IPv4 UDP
}

}  // namespace pam
