#include "packet/packet.hpp"

#include <algorithm>
#include <cassert>

#include "packet/packet_pool.hpp"

namespace pam {

namespace {
constexpr std::size_t kL3Offset = EthernetHeader::kSize;           // 14
constexpr std::size_t kL4Offset = kL3Offset + Ipv4Header::kMinSize;  // 34
}  // namespace

void Packet::reset(std::size_t wire_size) {
  assert(wire_size >= kMinSize && wire_size <= 9216 && "unreasonable frame size");
  data_.assign(wire_size, 0);
  id_ = 0;
  ingress_time_ = SimTime::zero();
  pcie_crossings_ = 0;
  hops_ = 0;
}

void Packet::reset_headers(std::size_t wire_size) {
  assert(wire_size >= kMinSize && wire_size <= 9216 && "unreasonable frame size");
  // resize() value-initialises (zeroes) only the grown tail; shrinking and
  // re-growing within capacity never touches the retained payload bytes.
  data_.resize(wire_size);
  std::fill_n(data_.begin(),
              std::min<std::size_t>(kHeaderBytes, wire_size), std::uint8_t{0});
  id_ = 0;
  ingress_time_ = SimTime::zero();
  pcie_crossings_ = 0;
  hops_ = 0;
}

std::span<std::uint8_t> Packet::l3() noexcept {
  return data_.size() > kL3Offset ? std::span<std::uint8_t>{data_}.subspan(kL3Offset)
                                  : std::span<std::uint8_t>{};
}

std::span<const std::uint8_t> Packet::l3() const noexcept {
  return data_.size() > kL3Offset ? std::span<const std::uint8_t>{data_}.subspan(kL3Offset)
                                  : std::span<const std::uint8_t>{};
}

std::span<std::uint8_t> Packet::l4() noexcept {
  return data_.size() > kL4Offset ? std::span<std::uint8_t>{data_}.subspan(kL4Offset)
                                  : std::span<std::uint8_t>{};
}

std::span<const std::uint8_t> Packet::l4() const noexcept {
  return data_.size() > kL4Offset ? std::span<const std::uint8_t>{data_}.subspan(kL4Offset)
                                  : std::span<const std::uint8_t>{};
}

std::span<std::uint8_t> Packet::payload() noexcept {
  constexpr std::size_t kPayloadOffset = kL4Offset + UdpHeader::kSize;
  return data_.size() > kPayloadOffset
             ? std::span<std::uint8_t>{data_}.subspan(kPayloadOffset)
             : std::span<std::uint8_t>{};
}

std::span<const std::uint8_t> Packet::payload() const noexcept {
  constexpr std::size_t kPayloadOffset = kL4Offset + UdpHeader::kSize;
  return data_.size() > kPayloadOffset
             ? std::span<const std::uint8_t>{data_}.subspan(kPayloadOffset)
             : std::span<const std::uint8_t>{};
}

std::optional<Ipv4Header> Packet::ipv4() const noexcept {
  const auto eth = EthernetHeader::parse(data());
  if (!eth || eth->ether_type != EthernetHeader::kEtherTypeIpv4) {
    return std::nullopt;
  }
  return Ipv4Header::parse(l3());
}

std::optional<FiveTuple> Packet::five_tuple() const noexcept {
  const auto ip = ipv4();
  if (!ip) {
    return std::nullopt;
  }
  FiveTuple t;
  t.src_ip = ip->src;
  t.dst_ip = ip->dst;
  t.proto = ip->protocol;
  const auto l4_bytes = l4();
  if (ip->protocol == IpProto::kTcp) {
    const auto tcp = TcpHeader::parse(l4_bytes);
    if (!tcp) {
      return std::nullopt;
    }
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  } else if (ip->protocol == IpProto::kUdp) {
    const auto udp = UdpHeader::parse(l4_bytes);
    if (!udp) {
      return std::nullopt;
    }
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  }
  return t;
}

void Packet::rewrite_ipv4_addrs(std::uint32_t new_src, std::uint32_t new_dst) noexcept {
  auto ip = ipv4();
  if (!ip) {
    return;
  }
  ip->src = new_src;
  ip->dst = new_dst;
  ip->write(l3());
}

void Packet::rewrite_ports(std::uint16_t new_src, std::uint16_t new_dst) noexcept {
  const auto ip = ipv4();
  if (!ip) {
    return;
  }
  auto l4_bytes = l4();
  if (l4_bytes.size() < 4) {
    return;
  }
  // src/dst port live at identical offsets for TCP and UDP.
  store_be16(l4_bytes.data(), new_src);
  store_be16(l4_bytes.data() + 2, new_dst);
}

PacketPtr::~PacketPtr() {
  if (p_ != nullptr && pool_ != nullptr) {
    pool_->release(p_);
  } else {
    // pam-lint: allow(D005) unpooled-owner fallback (tests, standalone builders); pooled packets take the release() branch
    delete p_;
  }
}

PacketPtr& PacketPtr::operator=(PacketPtr&& o) noexcept {
  if (this != &o) {
    if (p_ != nullptr && pool_ != nullptr) {
      pool_->release(p_);
    } else {
      // pam-lint: allow(D005) unpooled-owner fallback, same as the destructor
      delete p_;
    }
    p_ = o.p_;
    pool_ = o.pool_;
    o.p_ = nullptr;
    o.pool_ = nullptr;
  }
  return *this;
}

}  // namespace pam
