#include "packet/packet_pool.hpp"

#include <cassert>

namespace pam {

PacketPool::PacketPool(std::size_t initial_capacity, std::size_t max_capacity)
    : max_capacity_(max_capacity) {
  assert(initial_capacity <= max_capacity);
  all_.reserve(initial_capacity);
  free_.reserve(initial_capacity);
  for (std::size_t i = 0; i < initial_capacity; ++i) {
    all_.push_back(std::make_unique<Packet>());
    free_.push_back(all_.back().get());
  }
}

PacketPool::~PacketPool() {
  // Outstanding PacketPtrs after pool destruction would dangle; in debug
  // builds make that loud.
  assert(in_use() == 0 && "packets still in flight at pool destruction");
}

PacketPtr PacketPool::acquire(std::size_t wire_size) {
  ++allocations_;
  if (free_.empty()) {
    if (all_.size() >= max_capacity_) {
      ++exhaustions_;
      return {};
    }
    all_.push_back(std::make_unique<Packet>());
    free_.push_back(all_.back().get());
  }
  Packet* p = free_.back();
  free_.pop_back();
  // Recycle fast path: only the header region (and any grown tail) is
  // zeroed; producers overwrite the payload (see Packet::reset_headers).
  p->reset_headers(wire_size);
  return PacketPtr{p, this};
}

void PacketPool::release(Packet* p) noexcept {
  assert(p != nullptr);
  free_.push_back(p);
}

}  // namespace pam
